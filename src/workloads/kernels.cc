#include "workloads/kernels.hh"

#include <algorithm>
#include <bit>
#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"

namespace icfp {

namespace {

/** Register conventions inside generated programs. */
enum : RegId {
    kRHotOff = 1,    ///< hot-region offset
    kRWarmOff = 2,   ///< warm-region offset
    kRColdOff = 3,   ///< cold-region offset (stream or randomized)
    kRChase0 = 4,    ///< cold chase cursor 0 (cursors 1-3: r24-r26)
    kRBound = 5,     ///< loop bound
    kRCounter = 6,   ///< loop counter
    kRStoreOff = 7,  ///< store-target offset (hot region)
    kRLcg = 16,      ///< LCG state for randomized addressing
    kRTmp = 17,      ///< scratch for branch tests
    kRWarmChase0 = 18,///< warm chase cursor 0 (cursors 1-3: r27-r29)
    kRData0 = 8,     ///< kRData0 .. kRData0+7: load/compute data registers
    kRChaseExtra = 24,     ///< cold chase cursors 1..3
    kRWarmChaseExtra = 27, ///< warm chase cursors 1..3
    kRLink = 31,
};

constexpr unsigned kMaxChains = 4;

RegId
coldChaseReg(unsigned chain)
{
    return chain == 0 ? kRChase0
                      : static_cast<RegId>(kRChaseExtra + chain - 1);
}

RegId
warmChaseReg(unsigned chain)
{
    return chain == 0 ? kRWarmChase0
                      : static_cast<RegId>(kRWarmChaseExtra + chain - 1);
}

constexpr unsigned kNumDataRegs = 8;

size_t
roundPow2(size_t bytes)
{
    return std::bit_ceil(std::max<size_t>(bytes, 64));
}

/** One operation slot in the loop body. */
enum class Op : uint8_t {
    HotLoad,
    WarmLoad,
    ColdLoad,
    Chase,
    WarmChase,
    Store,
    IntOp,
    FpOp,
    NoiseBranch,
    Call,
};

} // namespace

unsigned
workloadBodySize(const WorkloadParams &p)
{
    // Loads/stores/ALU are one instruction; noise branches are two
    // (test + branch); cold randomized loads add one LCG step each
    // iteration; chase hops are one; plus pointer maintenance (6) and the
    // loop close (2).
    const unsigned per_hop = p.chaseImmediateUse ? 2 : 1;
    // A call executes the call itself plus the 3-instruction leaf.
    unsigned body = p.hotLoads + p.warmLoads + p.coldLoads +
                    per_hop * (p.chaseHops + p.warmChaseHops) + p.stores +
                    p.intOps + p.fpOps + 2 * p.noiseBranches + 4 * p.calls;
    body += (p.coldRandom || p.noiseBranches > 0) ? 2 : 0;
    body += 8;
    return body;
}

Program
buildWorkload(const WorkloadParams &p)
{
    Rng rng(p.seed);

    const size_t hot = roundPow2(p.hotBytes);
    const size_t warm = roundPow2(p.warmBytes);
    const size_t wchase = roundPow2(p.warmChaseBytes);
    const size_t cold = roundPow2(std::max<size_t>(p.coldBytes, 1));
    const bool uses_cold =
        p.coldLoads > 0 || p.chaseHops > 0 || p.coldRandom;

    // Region layout: [hot][warm][warm-chase][cold...], total a power of 2.
    const Addr hot_base = 0;
    const Addr warm_base = hot;
    const Addr wchase_base = hot + warm;
    const Addr cold_base = hot + warm + wchase;
    const size_t total =
        roundPow2(hot + warm + wchase + (uses_cold ? cold : 0));

    ProgramBuilder b(total);

    // ---- data initialization ---------------------------------------------
    for (Addr a = 0; a < hot + warm; a += kWordBytes)
        b.poke(a, rng.next());
    if (uses_cold) {
        // Light-touch init for the cold region (keep values nonzero).
        for (Addr a = cold_base; a < cold_base + cold; a += 4096)
            b.poke(a, rng.next() | 1);
    }

    // Pointer-chase rings: a seeded permutation over a region's nodes so
    // consecutive hops land on far-apart lines. Multiple chains start
    // staggered around the same ring and never interfere (it is one
    // cycle), giving independent concurrent dependence chains.
    auto build_ring = [&](Addr base, size_t region, unsigned node_bytes,
                          unsigned chains, auto reg_of) {
        const size_t nodes = region / node_bytes;
        ICFP_ASSERT(nodes >= 2 * kMaxChains);
        std::vector<uint32_t> order(nodes);
        for (size_t i = 0; i < nodes; ++i)
            order[i] = static_cast<uint32_t>(i);
        for (size_t i = nodes - 1; i > 0; --i)
            std::swap(order[i], order[rng.below(i + 1)]);
        for (size_t i = 0; i < nodes; ++i) {
            const Addr at = base + Addr{order[i]} * node_bytes;
            const Addr next =
                base + Addr{order[(i + 1) % nodes]} * node_bytes;
            b.poke(at, next);
        }
        for (unsigned c = 0; c < chains; ++c) {
            const size_t start = nodes * c / chains;
            b.li(reg_of(c), static_cast<int64_t>(
                                base + Addr{order[start]} * node_bytes));
        }
    };

    const unsigned chase_chains =
        std::min(std::max(p.chaseChains, 1u), kMaxChains);
    const unsigned warm_chase_chains =
        std::min(std::max(p.warmChaseChains, 1u), kMaxChains);

    if (p.chaseHops > 0) {
        build_ring(cold_base, cold, p.chaseNodeBytes, chase_chains,
                   [](unsigned c) { return coldChaseReg(c); });
    } else {
        b.li(kRChase0, static_cast<int64_t>(cold_base));
    }

    // Warm (L2-resident) ring at 128-byte spacing in its own small
    // region: hops mostly miss the D$ (the ring spans more 64B lines
    // than the D$ holds) but hit the L2 after the first lap.
    if (p.warmChaseHops > 0) {
        build_ring(wchase_base, wchase, 128, warm_chase_chains,
                   [](unsigned c) { return warmChaseReg(c); });
    } else {
        b.li(kRWarmChase0, static_cast<int64_t>(wchase_base));
    }

    // ---- prologue ----------------------------------------------------------
    b.li(kRHotOff, 0);
    b.li(kRWarmOff, 0);
    b.li(kRColdOff, 0);
    b.li(kRBound, 1); // patched below: loop "forever" (bounded by trace)
    b.li(kRCounter, 0);
    b.li(kRStoreOff, 0);
    b.li(kRLcg, static_cast<int64_t>(rng.next() | 1));
    for (unsigned r = 0; r < kNumDataRegs; ++r)
        b.li(static_cast<RegId>(kRData0 + r), static_cast<int64_t>(rng.range(1, 1000)));

    // Leaf functions for calls, placed after the loop; record patch site.
    std::vector<uint32_t> call_sites;

    // ---- loop body ----------------------------------------------------------
    const uint32_t loop = b.label();

    // Build and shuffle the op sequence.
    std::vector<Op> ops;
    auto add = [&ops](Op op, unsigned n) {
        for (unsigned i = 0; i < n; ++i)
            ops.push_back(op);
    };
    add(Op::HotLoad, p.hotLoads);
    add(Op::WarmLoad, p.warmLoads);
    add(Op::ColdLoad, p.coldLoads);
    add(Op::Chase, p.chaseHops);
    add(Op::WarmChase, p.warmChaseHops);
    add(Op::Store, p.stores);
    add(Op::IntOp, p.intOps);
    add(Op::FpOp, p.fpOps);
    add(Op::NoiseBranch, p.noiseBranches);
    add(Op::Call, p.calls);
    for (size_t i = ops.size(); i > 1; --i)
        std::swap(ops[i - 1], ops[rng.below(i)]);

    // Pseudo-random state used for randomized cold addressing and for
    // noise-branch outcomes: one LCG-ish step per iteration. Crucially
    // this chain is miss-INDEPENDENT, so noise branches are hard to
    // predict but resolvable during advance execution (most mispredicted
    // branches in real code do not hang off an outstanding miss).
    if (p.coldRandom || p.noiseBranches > 0) {
        b.mul(kRLcg, kRLcg, kRLcg); // squaring keeps it chaotic enough
        b.addi(kRLcg, kRLcg, 0x9e37);
    }

    unsigned data_rr = 0;   // round-robin data register chooser
    unsigned cold_slot = 0; // distinct displacement per cold load
    unsigned chase_rr = 0;  // round-robin chain chooser (cold)
    unsigned warm_chase_rr = 0; // round-robin chain chooser (warm)
    unsigned noise_bit = 0; // distinct LCG bit per noise branch
    auto next_data = [&]() -> RegId {
        const RegId r = static_cast<RegId>(kRData0 + data_rr);
        data_rr = (data_rr + 1) % kNumDataRegs;
        return r;
    };

    for (const Op op : ops) {
        switch (op) {
          case Op::HotLoad:
            b.ld(next_data(), kRHotOff, static_cast<int64_t>(hot_base) +
                                            int64_t{cold_slot % 4} * 8);
            break;
          case Op::WarmLoad:
            b.ld(next_data(), kRWarmOff, static_cast<int64_t>(warm_base) +
                                             int64_t{cold_slot % 4} * 64);
            break;
          case Op::ColdLoad: {
            const RegId base = p.coldRandom ? kRLcg : kRColdOff;
            b.ld(next_data(), base,
                 static_cast<int64_t>(cold_base) +
                     int64_t{cold_slot} * p.coldStride);
            ++cold_slot;
            break;
          }
          case Op::Chase: {
            const RegId cursor = coldChaseReg(chase_rr % chase_chains);
            ++chase_rr;
            b.ld(cursor, cursor, 0);
            if (p.chaseImmediateUse) {
                const RegId d = next_data();
                b.xor_(d, cursor, d);
            }
            break;
          }
          case Op::WarmChase: {
            const RegId cursor =
                warmChaseReg(warm_chase_rr % warm_chase_chains);
            ++warm_chase_rr;
            b.ld(cursor, cursor, 0);
            if (p.chaseImmediateUse) {
                const RegId d = next_data();
                b.xor_(d, cursor, d);
            }
            break;
          }
          case Op::Store:
            b.st(next_data(), kRStoreOff, static_cast<int64_t>(hot_base));
            break;
          case Op::IntOp: {
            // Half the ALU ops start fresh dependence chains (real code
            // constantly materializes constants/induction values); the
            // other half extend chains from loaded data. Without the
            // fresh half, load poison would spread through the entire
            // register pool and rallies would re-execute nearly the whole
            // program (Table 2's Rally/KI says 2-45% is typical).
            const RegId d = next_data();
            if (rng.chance(0.5)) {
                if (rng.chance(0.5))
                    b.add(d, kRCounter, kRLcg);
                else
                    b.xor_(d, kRCounter, kRLcg);
            } else {
                const RegId a = next_data();
                switch (rng.below(4)) {
                  case 0: b.add(d, d, a); break;
                  case 1: b.xor_(d, d, a); break;
                  case 2: b.sub(d, a, d); break;
                  default: b.mul(d, d, a); break;
                }
            }
            break;
          }
          case Op::FpOp: {
            const RegId d = next_data();
            if (rng.chance(0.5)) {
                if (rng.chance(0.5))
                    b.fadd(d, kRCounter, kRLcg);
                else
                    b.fmul(d, kRCounter, kRCounter);
            } else {
                const RegId a = next_data();
                if (rng.below(2) == 0)
                    b.fadd(d, d, a);
                else
                    b.fmul(d, d, a);
            }
            break;
          }
          case Op::NoiseBranch: {
            // Branch on a pseudo-random bit of the LCG state: essentially
            // unpredictable, but miss-independent (see above).
            b.andi(kRTmp, kRLcg,
                   int64_t{1} << ((noise_bit++ % 8) + 4));
            const uint32_t target = b.label() + 2;
            b.bne(kRTmp, 0, target);
            break;
          }
          case Op::Call:
            call_sites.push_back(b.label());
            b.call(0); // patched to the leaf below
            break;
        }
    }

    // Pointer maintenance.
    b.addi(kRHotOff, kRHotOff, 24);
    b.andi(kRHotOff, kRHotOff, static_cast<int64_t>(hot - 1));
    b.addi(kRWarmOff, kRWarmOff, 72);
    b.andi(kRWarmOff, kRWarmOff, static_cast<int64_t>(warm - 1));
    if (uses_cold) {
        b.addi(kRColdOff, kRColdOff,
               static_cast<int64_t>(p.coldStride) *
                   std::max(1u, p.coldLoads));
        b.andi(kRColdOff, kRColdOff, static_cast<int64_t>(cold - 1));
    } else {
        b.nop();
        b.nop();
    }
    b.addi(kRStoreOff, kRStoreOff, 16);
    b.andi(kRStoreOff, kRStoreOff, static_cast<int64_t>(hot - 1));

    // Loop close: runs "forever"; the interpreter's instruction budget
    // bounds the dynamic run.
    b.addi(kRCounter, kRCounter, 1);
    b.bne(kRCounter, 0, loop);
    b.halt();

    // Leaf function: a few ALU ops and a return.
    if (p.calls > 0) {
        const uint32_t leaf = b.label();
        b.add(kRTmp, kRTmp, kRCounter);
        b.xor_(kRTmp, kRTmp, kRLcg);
        b.ret(kRLink);
        for (const uint32_t site : call_sites)
            b.patchTarget(site, leaf);
    }

    return b.build(p.name);
}

} // namespace icfp
