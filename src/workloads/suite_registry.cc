#include "workloads/suite_registry.hh"

#include "common/logging.hh"

namespace icfp {

namespace {

/** Comma-separated registered names, for error messages. */
std::string
joinNames(const std::vector<std::string> &names)
{
    std::string out;
    for (const std::string &name : names) {
        if (!out.empty())
            out += ", ";
        out += name;
    }
    return out;
}

} // namespace

SuiteRegistry &
SuiteRegistry::instance()
{
    static SuiteRegistry registry;
    return registry;
}

void
SuiteRegistry::add(std::string name, std::string description,
                   SuiteFactory factory)
{
    ICFP_ASSERT(!name.empty() && factory);
    const auto [it, inserted] = entries_.emplace(
        std::move(name), Entry{std::move(description), std::move(factory),
                               nullptr});
    if (!inserted)
        ICFP_PANIC("workload suite '%s' registered twice",
                   it->first.c_str());
}

bool
SuiteRegistry::has(const std::string &name) const
{
    return entries_.count(name) != 0;
}

const std::vector<BenchmarkSpec> &
SuiteRegistry::buildLocked(const Entry &entry) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!entry.built) {
        auto suite = std::make_unique<const std::vector<BenchmarkSpec>>(
            entry.factory());
        ICFP_ASSERT(!suite->empty());
        entry.built = std::move(suite);
    }
    return *entry.built;
}

const std::vector<BenchmarkSpec> *
SuiteRegistry::maybeSuite(const std::string &name) const
{
    const auto it = entries_.find(name);
    if (it == entries_.end())
        return nullptr;
    return &buildLocked(it->second);
}

const std::vector<BenchmarkSpec> &
SuiteRegistry::suite(const std::string &name) const
{
    const std::vector<BenchmarkSpec> *found = maybeSuite(name);
    if (!found) {
        ICFP_FATAL("unknown workload suite '%s' (registered: %s)",
                   name.c_str(), joinNames(names()).c_str());
    }
    return *found;
}

const std::string &
SuiteRegistry::description(const std::string &name) const
{
    const auto it = entries_.find(name);
    if (it == entries_.end()) {
        ICFP_FATAL("unknown workload suite '%s' (registered: %s)",
                   name.c_str(), joinNames(names()).c_str());
    }
    return it->second.description;
}

std::vector<std::string>
SuiteRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto &[name, entry] : entries_)
        out.push_back(name);
    return out; // std::map iteration: already sorted
}

const BenchmarkSpec *
SuiteRegistry::findBenchmark(const std::string &bench) const
{
    const BenchmarkSpec *found = nullptr;
    for (const auto &[name, entry] : entries_) {
        for (const BenchmarkSpec &spec : buildLocked(entry)) {
            if (spec.name != bench)
                continue;
            if (!found) {
                found = &spec;
                continue;
            }
            // A re-exported name (e.g. a family bench inside the
            // combined suite) must be the identical generator: every
            // workload knob plus the definition version. Anything less
            // (say, same seed but a tweaked coldLoads) would let the
            // suite order silently pick between two different golden
            // traces that share one trace-store key.
            if (!(spec.workload == found->workload) ||
                spec.defVersion != found->defVersion) {
                ICFP_PANIC("benchmark '%s' defined inconsistently across "
                           "suites (workload knobs or defVersion differ: "
                           "seed %llu/gen v%u vs seed %llu/gen v%u)",
                           bench.c_str(),
                           (unsigned long long)found->workload.seed,
                           found->defVersion,
                           (unsigned long long)spec.workload.seed,
                           spec.defVersion);
            }
        }
    }
    return found;
}

SuiteRegistrar::SuiteRegistrar(std::string name, std::string description,
                               SuiteFactory factory)
{
    SuiteRegistry::instance().add(std::move(name), std::move(description),
                                  std::move(factory));
}

const std::vector<BenchmarkSpec> &
findSuite(const std::string &name)
{
    return SuiteRegistry::instance().suite(name);
}

std::vector<std::string>
suiteNames()
{
    return SuiteRegistry::instance().names();
}

} // namespace icfp
