/**
 * @file
 * Golden functional interpreter and the dynamic-instruction trace it emits.
 *
 * The interpreter is the reference semantics of the µISA. It executes a
 * Program and records every retired instruction — with resolved effective
 * addresses, loaded/stored values, results, and branch outcomes — into a
 * Trace. Timing models replay the Trace cycle-by-cycle while carrying their
 * own architectural value state; they assert agreement with the golden
 * values, which functionally verifies the iCFP merge machinery (chained
 * store buffer forwarding, sequence-number gating, slice re-execution).
 */

#ifndef ICFP_ISA_INTERPRETER_HH
#define ICFP_ISA_INTERPRETER_HH

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hh"
#include "isa/instruction.hh"
#include "isa/program.hh"

namespace icfp {

/** One retired dynamic instruction, fully resolved. */
struct DynInst
{
    uint32_t pc = 0;       ///< static instruction index
    uint32_t nextPc = 0;   ///< index of the next retired instruction
    Opcode op = Opcode::Nop;
    RegId dst = kNoReg;
    RegId src1 = kNoReg;
    RegId src2 = kNoReg;
    Addr addr = 0;         ///< effective address (Ld/St only), wrapped
    RegVal result = 0;     ///< value written to dst (Ld: the loaded value)
    RegVal storeValue = 0; ///< value stored (St only)
    bool taken = false;    ///< control transferred away from pc+1

    bool isLoad() const { return op == Opcode::Ld; }
    bool isStore() const { return op == Opcode::St; }
    bool isMem() const { return isLoad() || isStore(); }
    bool
    isControl() const
    {
        return op == Opcode::Beq || op == Opcode::Bne || op == Opcode::Blt ||
               op == Opcode::Jmp || op == Opcode::Call || op == Opcode::Ret;
    }
    bool
    isCondBranch() const
    {
        return op == Opcode::Beq || op == Opcode::Bne || op == Opcode::Blt;
    }
    /** Control whose target must come from the BTB/RAS (not the opcode). */
    bool isIndirect() const { return op == Opcode::Ret; }
    bool hasDst() const { return dst != kNoReg && dst != 0; }
};

/** Architectural register file snapshot. */
using RegFileState = std::array<RegVal, kNumRegs>;

/** A full dynamic execution of a Program. */
struct Trace
{
    /** The executed program (owned, so a Trace never dangles — callers
     *  may pass temporary Programs to Interpreter::run). */
    std::shared_ptr<const Program> program;
    std::vector<DynInst> insts;
    RegFileState finalRegs{};
    MemoryImage finalMemory;
    bool halted = false; ///< reached Halt (vs. instruction budget)

    size_t size() const { return insts.size(); }
    const DynInst &operator[](size_t i) const { return insts[i]; }
};

/** Reference functional executor for the µISA. */
class Interpreter
{
  public:
    /**
     * Execute @p program from instruction 0 until Halt or until
     * @p max_insts instructions have retired.
     *
     * @param program the static program (not modified)
     * @param max_insts dynamic instruction budget
     * @return the complete trace
     */
    static Trace run(const Program &program, uint64_t max_insts);

    /**
     * Compute a single instruction's result value given its operands.
     * Shared with timing models so slice re-execution produces bit-exact
     * results.
     */
    static RegVal evaluate(Opcode op, RegVal a, RegVal b, int64_t imm);

    /** Branch outcome for a conditional branch. */
    static bool branchTaken(Opcode op, RegVal a, RegVal b);
};

} // namespace icfp

#endif // ICFP_ISA_INTERPRETER_HH
