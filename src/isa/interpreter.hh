/**
 * @file
 * Golden functional interpreter and the dynamic-instruction trace it emits.
 *
 * The interpreter is the reference semantics of the µISA. It executes a
 * Program and records every retired instruction — with resolved effective
 * addresses, loaded/stored values, results, and branch outcomes — into a
 * Trace. Timing models replay the Trace cycle-by-cycle while carrying their
 * own architectural value state; they assert agreement with the golden
 * values, which functionally verifies the iCFP merge machinery (chained
 * store buffer forwarding, sequence-number gating, slice re-execution).
 */

#ifndef ICFP_ISA_INTERPRETER_HH
#define ICFP_ISA_INTERPRETER_HH

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hh"
#include "isa/instruction.hh"
#include "isa/program.hh"

namespace icfp {

/**
 * One retired dynamic instruction, fully resolved.
 *
 * Replay streams hundreds of millions of these through the timing cores,
 * so the layout is packed to exactly 32 bytes (two per cache line): the
 * result and store value share one field (an instruction never has both —
 * stores write no register), and the taken bit lives in a flags byte.
 * Keep trace_io's kTraceIoFormatVersion in lockstep with any change here.
 */
struct DynInst
{
    Addr addr = 0;       ///< effective address (Ld/St only), wrapped
    /** Value produced: the dst write (Ld: the loaded value; Call: the
     *  link value) — or, for St (which has no dst), the value stored. */
    RegVal value = 0;
    uint32_t pc = 0;     ///< static instruction index
    uint32_t nextPc = 0; ///< index of the next retired instruction
    Opcode op = Opcode::Nop;
    RegId dst = kNoReg;
    RegId src1 = kNoReg;
    RegId src2 = kNoReg;
    uint8_t flags = 0;   ///< kFlagTaken

    static constexpr uint8_t kFlagTaken = 1u << 0;

    /** Value written to dst (Ld: the loaded value). */
    RegVal result() const { return value; }
    /** Value stored (St only). */
    RegVal storeValue() const { return value; }
    /** Control transferred away from pc+1. */
    bool taken() const { return (flags & kFlagTaken) != 0; }
    void
    setTaken(bool taken)
    {
        flags = taken ? static_cast<uint8_t>(flags | kFlagTaken)
                      : static_cast<uint8_t>(flags & ~kFlagTaken);
    }

    bool isLoad() const { return op == Opcode::Ld; }
    bool isStore() const { return op == Opcode::St; }
    bool isMem() const { return op == Opcode::Ld || op == Opcode::St; }
    bool isControl() const { return opTraits(op).isControl; }
    bool isCondBranch() const { return opTraits(op).isCondBranch; }
    /** Control whose target must come from the BTB/RAS (not the opcode). */
    bool isIndirect() const { return op == Opcode::Ret; }
    bool hasDst() const { return dst != kNoReg && dst != 0; }
};

static_assert(sizeof(DynInst) == 32,
              "DynInst is replayed by the hundred million; keep it at two "
              "per cache line (and bump kTraceIoFormatVersion on change)");

/** Architectural register file snapshot. */
using RegFileState = std::array<RegVal, kNumRegs>;

/** A full dynamic execution of a Program. */
struct Trace
{
    /** The executed program (owned, so a Trace never dangles — callers
     *  may pass temporary Programs to Interpreter::run). */
    std::shared_ptr<const Program> program;
    std::vector<DynInst> insts;
    RegFileState finalRegs{};
    MemoryImage finalMemory;
    bool halted = false; ///< reached Halt (vs. instruction budget)

    /**
     * Word addresses where finalMemory differs from the program's
     * initial image (MemoryImage::diffWords). Computed once at trace
     * generation / load and shared; lets replay verification check a
     * MemOverlay in O(stored words) instead of comparing whole images.
     * Null for hand-assembled traces — verifiers then fall back to the
     * full-image scan.
     */
    std::shared_ptr<const std::vector<Addr>> dirtyWords;

    /** The dirty-word list, or nullptr when not precomputed. */
    const std::vector<Addr> *dirty() const { return dirtyWords.get(); }

    size_t size() const { return insts.size(); }
    const DynInst &operator[](size_t i) const { return insts[i]; }
};

/** Reference functional executor for the µISA. */
class Interpreter
{
  public:
    /**
     * Execute @p program from instruction 0 until Halt or until
     * @p max_insts instructions have retired.
     *
     * @param program the static program (not modified)
     * @param max_insts dynamic instruction budget
     * @return the complete trace
     */
    static Trace run(const Program &program, uint64_t max_insts);

    /**
     * Same, sharing ownership of an existing Program instead of copying
     * it into the trace (the copy includes the whole initial data image,
     * which dominates generation time for short instruction budgets).
     */
    static Trace run(std::shared_ptr<const Program> program,
                     uint64_t max_insts);

    /**
     * Compute a single instruction's result value given its operands.
     * Shared with timing models so slice re-execution produces bit-exact
     * results.
     */
    static RegVal evaluate(Opcode op, RegVal a, RegVal b, int64_t imm);

    /** Branch outcome for a conditional branch. */
    static bool branchTaken(Opcode op, RegVal a, RegVal b);
};

} // namespace icfp

#endif // ICFP_ISA_INTERPRETER_HH
