#include "isa/trace_io.hh"

#include <cstdint>
#include <fstream>
#include <istream>
#include <ostream>

#include "common/logging.hh"

namespace icfp {

namespace {

constexpr char kMagic[8] = {'I', 'C', 'F', 'P', 'T', 'R', 'C', '1'};
constexpr char kProgMagic[8] = {'I', 'C', 'F', 'P', 'P', 'R', 'G', '1'};

/** Explicit little-endian primitive writer. */
class Writer
{
  public:
    explicit Writer(std::ostream &os) : os_(os) {}

    void
    u8(uint8_t v)
    {
        os_.put(static_cast<char>(v));
    }

    void
    u32(uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            u8(static_cast<uint8_t>(v >> (8 * i)));
    }

    void
    u64(uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            u8(static_cast<uint8_t>(v >> (8 * i)));
    }

    void
    i64(int64_t v)
    {
        u64(static_cast<uint64_t>(v));
    }

    void
    str(const std::string &s)
    {
        u32(static_cast<uint32_t>(s.size()));
        os_.write(s.data(), static_cast<std::streamsize>(s.size()));
    }

  private:
    std::ostream &os_;
};

/** Explicit little-endian primitive reader; fatal on truncation. */
class Reader
{
  public:
    explicit Reader(std::istream &is) : is_(is) {}

    uint8_t
    u8()
    {
        const int c = is_.get();
        if (c == std::char_traits<char>::eof())
            ICFP_FATAL("trace stream truncated");
        return static_cast<uint8_t>(c);
    }

    uint32_t
    u32()
    {
        uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<uint32_t>(u8()) << (8 * i);
        return v;
    }

    uint64_t
    u64()
    {
        uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<uint64_t>(u8()) << (8 * i);
        return v;
    }

    int64_t
    i64()
    {
        return static_cast<int64_t>(u64());
    }

    std::string
    str()
    {
        const uint32_t len = u32();
        if (len > (1u << 20))
            ICFP_FATAL("trace stream corrupt: oversized string");
        std::string s(len, '\0');
        is_.read(s.data(), len);
        if (static_cast<uint32_t>(is_.gcount()) != len)
            ICFP_FATAL("trace stream truncated");
        return s;
    }

  private:
    std::istream &is_;
};

void
writeMemoryImage(Writer &w, const MemoryImage &mem)
{
    const size_t bytes = mem.sizeBytes();
    w.u64(bytes);
    for (Addr a = 0; a < bytes; a += kWordBytes)
        w.u64(mem.read(a));
}

MemoryImage
readMemoryImage(Reader &r)
{
    const uint64_t bytes = r.u64();
    if (bytes < kWordBytes || (bytes & (bytes - 1)) != 0 ||
        bytes > (uint64_t{1} << 36)) {
        ICFP_FATAL("trace stream corrupt: bad memory image size");
    }
    MemoryImage mem(bytes);
    for (Addr a = 0; a < bytes; a += kWordBytes)
        mem.write(a, r.u64());
    return mem;
}

void
writeProgramBody(Writer &w, const Program &program)
{
    w.str(program.name);
    w.u32(static_cast<uint32_t>(program.code.size()));
    for (const Instruction &inst : program.code) {
        w.u8(static_cast<uint8_t>(inst.op));
        w.u8(inst.dst);
        w.u8(inst.src1);
        w.u8(inst.src2);
        w.i64(inst.imm);
        w.u32(inst.target);
    }
    writeMemoryImage(w, program.initialMemory);
}

Program
readProgramBody(Reader &r)
{
    Program p;
    p.name = r.str();
    const uint32_t count = r.u32();
    if (count > (1u << 26))
        ICFP_FATAL("trace stream corrupt: oversized program");
    p.code.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
        Instruction inst;
        const uint8_t op = r.u8();
        if (op > static_cast<uint8_t>(Opcode::Halt))
            ICFP_FATAL("trace stream corrupt: bad opcode");
        inst.op = static_cast<Opcode>(op);
        inst.dst = r.u8();
        inst.src1 = r.u8();
        inst.src2 = r.u8();
        inst.imm = r.i64();
        inst.target = r.u32();
        p.code.push_back(inst);
    }
    p.initialMemory = readMemoryImage(r);
    return p;
}

void
checkMagic(Reader &r, const char (&magic)[8], const char *what)
{
    for (char expected : magic) {
        if (static_cast<char>(r.u8()) != expected)
            ICFP_FATAL("not a %s file (bad magic)", what);
    }
}

} // namespace

void
writeProgram(std::ostream &os, const Program &program)
{
    Writer w(os);
    os.write(kProgMagic, sizeof(kProgMagic));
    writeProgramBody(w, program);
}

Program
readProgram(std::istream &is)
{
    Reader r(is);
    checkMagic(r, kProgMagic, "program");
    return readProgramBody(r);
}

void
writeTrace(std::ostream &os, const Trace &trace)
{
    ICFP_ASSERT(trace.program != nullptr);
    Writer w(os);
    os.write(kMagic, sizeof(kMagic));
    writeProgramBody(w, *trace.program);

    w.u64(trace.insts.size());
    for (const DynInst &di : trace.insts) {
        w.u32(di.pc);
        w.u32(di.nextPc);
        w.u8(static_cast<uint8_t>(di.op));
        w.u8(di.dst);
        w.u8(di.src1);
        w.u8(di.src2);
        w.u64(di.addr);
        w.u64(di.result);
        w.u64(di.storeValue);
        w.u8(di.taken ? 1 : 0);
    }

    for (RegVal v : trace.finalRegs)
        w.u64(v);
    writeMemoryImage(w, trace.finalMemory);
    w.u8(trace.halted ? 1 : 0);
}

Trace
readTrace(std::istream &is)
{
    Reader r(is);
    checkMagic(r, kMagic, "trace");

    Trace trace;
    trace.program = std::make_shared<Program>(readProgramBody(r));

    const uint64_t count = r.u64();
    if (count > (uint64_t{1} << 32))
        ICFP_FATAL("trace stream corrupt: oversized trace");
    trace.insts.reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
        DynInst di;
        di.pc = r.u32();
        di.nextPc = r.u32();
        const uint8_t op = r.u8();
        if (op > static_cast<uint8_t>(Opcode::Halt))
            ICFP_FATAL("trace stream corrupt: bad opcode");
        di.op = static_cast<Opcode>(op);
        di.dst = r.u8();
        di.src1 = r.u8();
        di.src2 = r.u8();
        di.addr = r.u64();
        di.result = r.u64();
        di.storeValue = r.u64();
        di.taken = r.u8() != 0;
        trace.insts.push_back(di);
    }

    for (RegVal &v : trace.finalRegs)
        v = r.u64();
    trace.finalMemory = readMemoryImage(r);
    trace.halted = r.u8() != 0;
    return trace;
}

void
saveTraceFile(const std::string &path, const Trace &trace)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        ICFP_FATAL("cannot open %s for writing", path.c_str());
    writeTrace(os, trace);
    os.flush();
    if (!os)
        ICFP_FATAL("write to %s failed", path.c_str());
}

Trace
loadTraceFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        ICFP_FATAL("cannot open %s", path.c_str());
    return readTrace(is);
}

} // namespace icfp
