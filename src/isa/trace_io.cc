#include "isa/trace_io.hh"

#include <cstdint>
#include <cstring>
#include <vector>
#include <fstream>
#include <istream>
#include <ostream>
#include <string>

#include "common/logging.hh"

namespace icfp {

namespace {

// Version 2: DynInst records carry one shared value field (result /
// store value merged) and a flags byte instead of a bool — in lockstep
// with kTraceIoFormatVersion and the packed in-memory layout.
constexpr char kMagic[8] = {'I', 'C', 'F', 'P', 'T', 'R', 'C', '2'};
constexpr char kProgMagic[8] = {'I', 'C', 'F', 'P', 'P', 'R', 'G', '2'};

/**
 * Explicit little-endian primitive writer, buffered: primitives append
 * to an in-memory buffer that is flushed to the stream once, at the end
 * (per-byte ostream::put dominated serialization time for multi-million
 * instruction traces).
 */
class Writer
{
  public:
    explicit Writer(std::ostream &os) : os_(os) {}

    ~Writer() { flush(); }

    void
    u8(uint8_t v)
    {
        buffer_.push_back(static_cast<char>(v));
    }

    void
    u32(uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            u8(static_cast<uint8_t>(v >> (8 * i)));
    }

    void
    u64(uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            u8(static_cast<uint8_t>(v >> (8 * i)));
    }

    void
    i64(int64_t v)
    {
        u64(static_cast<uint64_t>(v));
    }

    void
    str(const std::string &s)
    {
        u32(static_cast<uint32_t>(s.size()));
        buffer_.append(s);
    }

    void
    raw(const void *data, size_t size)
    {
        buffer_.append(static_cast<const char *>(data), size);
    }

    void
    flush()
    {
        if (buffer_.empty())
            return;
        os_.write(buffer_.data(),
                  static_cast<std::streamsize>(buffer_.size()));
        buffer_.clear();
    }

  private:
    std::ostream &os_;
    std::string buffer_;
};

/**
 * Explicit little-endian primitive reader; fatal on truncation. The
 * whole remaining stream is slurped into memory up front and decoded
 * with bounds-checked cursor reads.
 */
class Reader
{
  public:
    explicit Reader(std::istream &is)
    {
        // Read everything that remains (callers may have consumed a
        // header already); decoders stop at their own counts, so any
        // trailing bytes are simply never looked at.
        std::string chunk(1u << 16, '\0');
        while (is.read(chunk.data(),
                       static_cast<std::streamsize>(chunk.size())) ||
               is.gcount() > 0) {
            bytes_.append(chunk.data(),
                          static_cast<size_t>(is.gcount()));
        }
    }

    uint8_t
    u8()
    {
        need(1);
        return static_cast<uint8_t>(bytes_[at_++]);
    }

    uint32_t
    u32()
    {
        need(4);
        uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<uint32_t>(
                     static_cast<uint8_t>(bytes_[at_ + i]))
                 << (8 * i);
        at_ += 4;
        return v;
    }

    uint64_t
    u64()
    {
        need(8);
        uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<uint64_t>(
                     static_cast<uint8_t>(bytes_[at_ + i]))
                 << (8 * i);
        at_ += 8;
        return v;
    }

    int64_t
    i64()
    {
        return static_cast<int64_t>(u64());
    }

    std::string
    str()
    {
        const uint32_t len = u32();
        if (len > (1u << 20))
            ICFP_FATAL("trace stream corrupt: oversized string");
        need(len);
        std::string s = bytes_.substr(at_, len);
        at_ += len;
        return s;
    }

  private:
    void
    need(size_t n)
    {
        if (at_ + n > bytes_.size())
            ICFP_FATAL("trace stream truncated");
    }

    std::string bytes_;
    size_t at_ = 0;
};

void
writeMemoryImage(Writer &w, const MemoryImage &mem)
{
    const size_t bytes = mem.sizeBytes();
    w.u64(bytes);
    for (Addr a = 0; a < bytes; a += kWordBytes)
        w.u64(mem.read(a));
}

MemoryImage
readMemoryImage(Reader &r)
{
    const uint64_t bytes = r.u64();
    if (bytes < kWordBytes || (bytes & (bytes - 1)) != 0 ||
        bytes > (uint64_t{1} << 36)) {
        ICFP_FATAL("trace stream corrupt: bad memory image size");
    }
    MemoryImage mem(bytes);
    for (Addr a = 0; a < bytes; a += kWordBytes)
        mem.write(a, r.u64());
    return mem;
}

void
writeProgramBody(Writer &w, const Program &program)
{
    w.str(program.name);
    w.u32(static_cast<uint32_t>(program.code.size()));
    for (const Instruction &inst : program.code) {
        w.u8(static_cast<uint8_t>(inst.op));
        w.u8(inst.dst);
        w.u8(inst.src1);
        w.u8(inst.src2);
        w.i64(inst.imm);
        w.u32(inst.target);
    }
    writeMemoryImage(w, program.initialMemory);
}

Program
readProgramBody(Reader &r)
{
    Program p;
    p.name = r.str();
    const uint32_t count = r.u32();
    if (count > (1u << 26))
        ICFP_FATAL("trace stream corrupt: oversized program");
    p.code.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
        Instruction inst;
        const uint8_t op = r.u8();
        if (op > static_cast<uint8_t>(Opcode::Halt))
            ICFP_FATAL("trace stream corrupt: bad opcode");
        inst.op = static_cast<Opcode>(op);
        inst.dst = r.u8();
        inst.src1 = r.u8();
        inst.src2 = r.u8();
        inst.imm = r.i64();
        inst.target = r.u32();
        p.code.push_back(inst);
    }
    p.initialMemory = readMemoryImage(r);
    return p;
}

void
checkMagic(Reader &r, const char (&magic)[8], const char *what)
{
    for (char expected : magic) {
        if (static_cast<char>(r.u8()) != expected)
            ICFP_FATAL("not a %s file (bad magic)", what);
    }
}

} // namespace

void
writeProgram(std::ostream &os, const Program &program)
{
    Writer w(os);
    w.raw(kProgMagic, sizeof(kProgMagic));
    writeProgramBody(w, program);
}

Program
readProgram(std::istream &is)
{
    Reader r(is);
    checkMagic(r, kProgMagic, "program");
    return readProgramBody(r);
}

void
writeTrace(std::ostream &os, const Trace &trace)
{
    ICFP_ASSERT(trace.program != nullptr);
    Writer w(os);
    w.raw(kMagic, sizeof(kMagic));
    writeProgramBody(w, *trace.program);

    w.u64(trace.insts.size());
    for (const DynInst &di : trace.insts) {
        w.u32(di.pc);
        w.u32(di.nextPc);
        w.u8(static_cast<uint8_t>(di.op));
        w.u8(di.dst);
        w.u8(di.src1);
        w.u8(di.src2);
        w.u64(di.addr);
        w.u64(di.value);
        w.u8(di.flags);
    }

    for (RegVal v : trace.finalRegs)
        w.u64(v);

    // The final memory image is stored as a delta against the initial
    // image (count + (addr, value) pairs): workload data segments run to
    // tens of megabytes while a run touches a tiny fraction, so this
    // halves file size and gives readTrace the dirty-word list for free.
    std::vector<Addr> local_dirty;
    const std::vector<Addr> *dirty = trace.dirty();
    if (!dirty) {
        local_dirty =
            trace.program->initialMemory.diffWords(trace.finalMemory);
        dirty = &local_dirty;
    }
    w.u64(dirty->size());
    for (const Addr addr : *dirty) {
        w.u64(addr);
        w.u64(trace.finalMemory.read(addr));
    }
    w.u8(trace.halted ? 1 : 0);
}

Trace
readTrace(std::istream &is)
{
    Reader r(is);
    checkMagic(r, kMagic, "trace");

    Trace trace;
    trace.program = std::make_shared<Program>(readProgramBody(r));

    const uint64_t count = r.u64();
    if (count > (uint64_t{1} << 32))
        ICFP_FATAL("trace stream corrupt: oversized trace");
    trace.insts.reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
        DynInst &di = trace.insts.emplace_back();
        di.pc = r.u32();
        di.nextPc = r.u32();
        const uint8_t op = r.u8();
        if (op > static_cast<uint8_t>(Opcode::Halt))
            ICFP_FATAL("trace stream corrupt: bad opcode");
        di.op = static_cast<Opcode>(op);
        di.dst = r.u8();
        di.src1 = r.u8();
        di.src2 = r.u8();
        di.addr = r.u64();
        di.value = r.u64();
        di.flags = r.u8();
    }

    for (RegVal &v : trace.finalRegs)
        v = r.u64();

    // Reconstruct the final image from the initial image + dirty deltas.
    trace.finalMemory = trace.program->initialMemory;
    const uint64_t dirty_count = r.u64();
    if (dirty_count > trace.finalMemory.sizeBytes() / kWordBytes)
        ICFP_FATAL("trace stream corrupt: oversized memory delta");
    std::vector<Addr> dirty;
    dirty.reserve(dirty_count);
    for (uint64_t i = 0; i < dirty_count; ++i) {
        const Addr addr = r.u64();
        const RegVal value = r.u64();
        if (trace.finalMemory.wrap(addr) != addr)
            ICFP_FATAL("trace stream corrupt: unaligned delta address");
        if (trace.finalMemory.read(addr) == value)
            ICFP_FATAL("trace stream corrupt: identity delta");
        trace.finalMemory.write(addr, value);
        dirty.push_back(addr);
    }
    trace.dirtyWords =
        std::make_shared<const std::vector<Addr>>(std::move(dirty));
    trace.halted = r.u8() != 0;
    return trace;
}

void
saveTraceFile(const std::string &path, const Trace &trace)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        ICFP_FATAL("cannot open %s for writing", path.c_str());
    writeTrace(os, trace);
    os.flush();
    if (!os)
        ICFP_FATAL("write to %s failed", path.c_str());
}

Trace
loadTraceFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        ICFP_FATAL("cannot open %s", path.c_str());
    return readTrace(is);
}

} // namespace icfp
