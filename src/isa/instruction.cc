#include "isa/instruction.hh"

#include <sstream>

#include "common/logging.hh"

namespace icfp {

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::Nop: return "nop";
      case Opcode::Add: return "add";
      case Opcode::Sub: return "sub";
      case Opcode::And: return "and";
      case Opcode::Or: return "or";
      case Opcode::Xor: return "xor";
      case Opcode::Shl: return "shl";
      case Opcode::Shr: return "shr";
      case Opcode::Addi: return "addi";
      case Opcode::Andi: return "andi";
      case Opcode::Mul: return "mul";
      case Opcode::Fadd: return "fadd";
      case Opcode::Fmul: return "fmul";
      case Opcode::Ld: return "ld";
      case Opcode::St: return "st";
      case Opcode::Beq: return "beq";
      case Opcode::Bne: return "bne";
      case Opcode::Blt: return "blt";
      case Opcode::Jmp: return "jmp";
      case Opcode::Call: return "call";
      case Opcode::Ret: return "ret";
      case Opcode::Halt: return "halt";
    }
    return "???";
}

std::string
disassemble(const Instruction &inst)
{
    std::ostringstream os;
    os << opcodeName(inst.op);
    switch (inst.op) {
      case Opcode::Nop:
      case Opcode::Halt:
        break;
      case Opcode::Addi:
      case Opcode::Andi:
        os << " r" << int(inst.dst) << ", r" << int(inst.src1) << ", "
           << inst.imm;
        break;
      case Opcode::Ld:
        os << " r" << int(inst.dst) << ", [r" << int(inst.src1) << " + "
           << inst.imm << "]";
        break;
      case Opcode::St:
        os << " r" << int(inst.src2) << ", [r" << int(inst.src1) << " + "
           << inst.imm << "]";
        break;
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
        os << " r" << int(inst.src1) << ", r" << int(inst.src2) << ", @"
           << inst.target;
        break;
      case Opcode::Jmp:
        os << " @" << inst.target;
        break;
      case Opcode::Call:
        os << " r" << int(inst.dst) << ", @" << inst.target;
        break;
      case Opcode::Ret:
        os << " r" << int(inst.src1);
        break;
      default:
        os << " r" << int(inst.dst) << ", r" << int(inst.src1) << ", r"
           << int(inst.src2);
        break;
    }
    return os.str();
}

} // namespace icfp
