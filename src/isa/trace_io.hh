/**
 * @file
 * Binary serialization for programs and golden traces.
 *
 * The paper's experiments replay each benchmark under many machine
 * configurations; serializing the golden execution lets harnesses and
 * the command-line driver generate a trace once and reuse it across
 * sweeps (and lets users archive reproducible inputs). The format is a
 * simple explicit little-endian stream with a magic/version header —
 * files are portable across hosts.
 *
 * Format (version 2):
 *   magic "ICFPTRC2"
 *   program: name, code (one record per instruction), data image
 *   dynamic instructions (count + packed records: pc, nextPc, op,
 *     dst/src1/src2, addr, value, flags)
 *   final register file, final memory image, halted flag
 */

#ifndef ICFP_ISA_TRACE_IO_HH
#define ICFP_ISA_TRACE_IO_HH

#include <iosfwd>
#include <string>

#include "isa/interpreter.hh"
#include "isa/program.hh"

namespace icfp {

/**
 * Serialization format version. Must stay in lockstep with the trailing
 * digit of the "ICFPTRC2"/"ICFPPRG2" magics in trace_io.cc: bump both
 * whenever the encoding changes (field added, reordered, or re-typed).
 * Consumers that persist traces (sim/trace_store.hh) embed this in
 * their cache keys so files in an old encoding are regenerated, never
 * parsed (readTrace is fatal on undecodable input).
 *
 * Version 2 packed the DynInst record (merged result/store value, flags
 * byte) alongside the in-memory DynInst repack.
 */
constexpr unsigned kTraceIoFormatVersion = 2;

/** Serialize @p program to @p os. */
void writeProgram(std::ostream &os, const Program &program);

/** Deserialize a Program; fatal on malformed input. */
Program readProgram(std::istream &is);

/** Serialize a complete golden trace (program included) to @p os. */
void writeTrace(std::ostream &os, const Trace &trace);

/** Deserialize a Trace; fatal on malformed input. */
Trace readTrace(std::istream &is);

/** Convenience: write @p trace to @p path (fatal on I/O failure). */
void saveTraceFile(const std::string &path, const Trace &trace);

/** Convenience: read a trace from @p path (fatal on I/O failure). */
Trace loadTraceFile(const std::string &path);

} // namespace icfp

#endif // ICFP_ISA_TRACE_IO_HH
