/**
 * @file
 * Static program representation, data-segment image, and a small builder
 * API used by the workload generators, tests, and examples.
 */

#ifndef ICFP_ISA_PROGRAM_HH
#define ICFP_ISA_PROGRAM_HH

#include <string>
#include <unordered_map>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"
#include "isa/instruction.hh"

namespace icfp {

/**
 * Flat byte-addressed data memory, accessed at 8-byte word granularity.
 *
 * The size is a power of two; effective addresses are wrapped into the
 * segment and aligned down to a word, so every program is memory-safe by
 * construction.
 */
class MemoryImage
{
  public:
    MemoryImage() = default;

    explicit MemoryImage(size_t size_bytes) { resize(size_bytes); }

    /** @param size_bytes must be a power of two and >= 8 */
    void
    resize(size_t size_bytes)
    {
        ICFP_ASSERT(size_bytes >= kWordBytes);
        ICFP_ASSERT((size_bytes & (size_bytes - 1)) == 0);
        words_.assign(size_bytes / kWordBytes, 0);
        mask_ = size_bytes - 1;
    }

    size_t sizeBytes() const { return words_.size() * kWordBytes; }

    /** Wrap an arbitrary 64-bit EA into the segment, word-aligned. */
    Addr
    wrap(Addr addr) const
    {
        return (addr & mask_) & ~Addr{kWordBytes - 1};
    }

    RegVal read(Addr addr) const { return words_[wrap(addr) / kWordBytes]; }

    void
    write(Addr addr, RegVal value)
    {
        words_[wrap(addr) / kWordBytes] = value;
    }

    /** Raw word storage (bulk scans: trace I/O, image diffing). */
    const std::vector<RegVal> &words() const { return words_; }

    /**
     * Word addresses at which @p other differs from this image (both
     * must be the same size). Sorted ascending. One linear scan — meant
     * to run once per golden trace, so replays can verify against the
     * diff instead of comparing whole multi-megabyte images.
     */
    std::vector<Addr> diffWords(const MemoryImage &other) const;

    bool operator==(const MemoryImage &other) const = default;

  private:
    std::vector<RegVal> words_;
    Addr mask_ = 0;
};

/**
 * Copy-on-write view over a base MemoryImage.
 *
 * Timing cores used to start every run by copying the benchmark's whole
 * initial data image (up to tens of megabytes) and end it by comparing
 * their copy against the golden final image — a fixed cost that dwarfed
 * actual replay work on short runs. The overlay keeps the base read-only
 * and tracks only the words the core actually stores; verification
 * checks the written words against the golden final image plus the
 * trace's precomputed dirty-word list (Trace::dirtyWords), which is
 * exactly as strong as the full-image compare.
 */
class MemOverlay
{
  public:
    MemOverlay() = default;

    explicit MemOverlay(const MemoryImage *base) { reset(base); }

    /** Rebind to @p base and drop all overlay writes. */
    void
    reset(const MemoryImage *base)
    {
        base_ = base;
        writes_.clear();
    }

    Addr wrap(Addr addr) const { return base_->wrap(addr); }

    RegVal
    read(Addr addr) const
    {
        const auto it = writes_.find(base_->wrap(addr));
        return it != writes_.end() ? it->second : base_->read(addr);
    }

    void
    write(Addr addr, RegVal value)
    {
        writes_[base_->wrap(addr)] = value;
    }

    /**
     * Does this view (base + overlay writes) equal @p final_image?
     *
     * With @p dirty_words — the word addresses where the final image
     * differs from the base (see MemoryImage::diffWords) — the check is
     * O(written words). Without it, falls back to a full-image scan.
     */
    bool matchesFinal(const MemoryImage &final_image,
                      const std::vector<Addr> *dirty_words) const;

  private:
    const MemoryImage *base_ = nullptr;
    std::unordered_map<Addr, RegVal> writes_;
};

/** A static program: code plus initial data segment. */
struct Program
{
    std::string name;               ///< for reports
    std::vector<Instruction> code;  ///< entry point is index 0
    MemoryImage initialMemory;      ///< data segment at t = 0

    size_t numInstructions() const { return code.size(); }
};

/**
 * Convenience builder for writing programs in tests and examples.
 *
 * Supports forward-referenced labels:
 * @code
 *   ProgramBuilder b(4096);
 *   auto loop = b.label();
 *   b.ld(1, 1, 0);          // r1 = MEM[r1]
 *   b.bne(1, 0, loop);      // while (r1 != 0)
 *   b.halt();
 *   Program p = b.build();
 * @endcode
 */
class ProgramBuilder
{
  public:
    /** @param data_bytes data segment size (power of two) */
    explicit ProgramBuilder(size_t data_bytes)
    {
        program_.initialMemory.resize(data_bytes);
    }

    /** A label bound to the *next* emitted instruction. */
    uint32_t
    label() const
    {
        return static_cast<uint32_t>(program_.code.size());
    }

    // Three-register ALU forms.
    ProgramBuilder &add(RegId d, RegId a, RegId b) { return r3(Opcode::Add, d, a, b); }
    ProgramBuilder &sub(RegId d, RegId a, RegId b) { return r3(Opcode::Sub, d, a, b); }
    ProgramBuilder &and_(RegId d, RegId a, RegId b) { return r3(Opcode::And, d, a, b); }
    ProgramBuilder &or_(RegId d, RegId a, RegId b) { return r3(Opcode::Or, d, a, b); }
    ProgramBuilder &xor_(RegId d, RegId a, RegId b) { return r3(Opcode::Xor, d, a, b); }
    ProgramBuilder &shl(RegId d, RegId a, RegId b) { return r3(Opcode::Shl, d, a, b); }
    ProgramBuilder &shr(RegId d, RegId a, RegId b) { return r3(Opcode::Shr, d, a, b); }
    ProgramBuilder &mul(RegId d, RegId a, RegId b) { return r3(Opcode::Mul, d, a, b); }
    ProgramBuilder &fadd(RegId d, RegId a, RegId b) { return r3(Opcode::Fadd, d, a, b); }
    ProgramBuilder &fmul(RegId d, RegId a, RegId b) { return r3(Opcode::Fmul, d, a, b); }

    ProgramBuilder &
    addi(RegId d, RegId a, int64_t imm)
    {
        Instruction i;
        i.op = Opcode::Addi;
        i.dst = d;
        i.src1 = a;
        i.imm = imm;
        return emit(i);
    }

    ProgramBuilder &
    andi(RegId d, RegId a, int64_t imm)
    {
        Instruction i;
        i.op = Opcode::Andi;
        i.dst = d;
        i.src1 = a;
        i.imm = imm;
        return emit(i);
    }

    /** Load a constant via addi from r0. */
    ProgramBuilder &li(RegId d, int64_t imm) { return addi(d, 0, imm); }

    ProgramBuilder &
    ld(RegId d, RegId base, int64_t disp)
    {
        Instruction i;
        i.op = Opcode::Ld;
        i.dst = d;
        i.src1 = base;
        i.imm = disp;
        return emit(i);
    }

    ProgramBuilder &
    st(RegId value, RegId base, int64_t disp)
    {
        Instruction i;
        i.op = Opcode::St;
        i.src1 = base;
        i.src2 = value;
        i.imm = disp;
        return emit(i);
    }

    ProgramBuilder &beq(RegId a, RegId b, uint32_t t) { return br(Opcode::Beq, a, b, t); }
    ProgramBuilder &bne(RegId a, RegId b, uint32_t t) { return br(Opcode::Bne, a, b, t); }
    ProgramBuilder &blt(RegId a, RegId b, uint32_t t) { return br(Opcode::Blt, a, b, t); }

    ProgramBuilder &
    jmp(uint32_t t)
    {
        Instruction i;
        i.op = Opcode::Jmp;
        i.target = t;
        return emit(i);
    }

    ProgramBuilder &
    call(uint32_t t, RegId link = 31)
    {
        Instruction i;
        i.op = Opcode::Call;
        i.dst = link;
        i.target = t;
        return emit(i);
    }

    ProgramBuilder &
    ret(RegId link = 31)
    {
        Instruction i;
        i.op = Opcode::Ret;
        i.src1 = link;
        return emit(i);
    }

    ProgramBuilder &
    nop()
    {
        return emit(Instruction{});
    }

    ProgramBuilder &
    halt()
    {
        Instruction i;
        i.op = Opcode::Halt;
        return emit(i);
    }

    /** Patch the target of a previously emitted control instruction. */
    void
    patchTarget(uint32_t inst_index, uint32_t target)
    {
        program_.code.at(inst_index).target = target;
    }

    /** Initialize one data word. */
    void
    poke(Addr addr, RegVal value)
    {
        program_.initialMemory.write(addr, value);
    }

    MemoryImage &memory() { return program_.initialMemory; }

    Program
    build(std::string name = "program")
    {
        Program p = program_;
        p.name = std::move(name);
        validate(p);
        return p;
    }

  private:
    ProgramBuilder &
    r3(Opcode op, RegId d, RegId a, RegId b)
    {
        Instruction i;
        i.op = op;
        i.dst = d;
        i.src1 = a;
        i.src2 = b;
        return emit(i);
    }

    ProgramBuilder &
    br(Opcode op, RegId a, RegId b, uint32_t t)
    {
        Instruction i;
        i.op = op;
        i.src1 = a;
        i.src2 = b;
        i.target = t;
        return emit(i);
    }

    ProgramBuilder &
    emit(Instruction i)
    {
        program_.code.push_back(i);
        return *this;
    }

    static void validate(const Program &p);

    Program program_;
};

} // namespace icfp

#endif // ICFP_ISA_PROGRAM_HH
