/**
 * @file
 * The simulation µISA.
 *
 * A compact 64-bit load/store ISA standing in for the paper's Alpha AXP.
 * It is deliberately small — the phenomena iCFP targets are data-dependence
 * and memory-access patterns, which this ISA expresses fully — but it is a
 * real ISA with executable semantics: the golden interpreter (isa/
 * interpreter.hh) runs programs functionally, and every timing model
 * carries and checks architectural values through its own mechanisms.
 *
 * Register r0 is hardwired to zero. Register r31 is the conventional link
 * register used by Call.
 */

#ifndef ICFP_ISA_INSTRUCTION_HH
#define ICFP_ISA_INSTRUCTION_HH

#include <array>
#include <cstdint>
#include <string>

#include "common/types.hh"

namespace icfp {

/** µISA operations. */
enum class Opcode : uint8_t {
    Nop,
    // Integer ALU, 1-cycle.
    Add,  ///< dst = src1 + src2
    Sub,  ///< dst = src1 - src2
    And,  ///< dst = src1 & src2
    Or,   ///< dst = src1 | src2
    Xor,  ///< dst = src1 ^ src2
    Shl,  ///< dst = src1 << (src2 & 63)
    Shr,  ///< dst = src1 >> (src2 & 63)
    Addi, ///< dst = src1 + imm
    Andi, ///< dst = src1 & imm
    // Integer multiply, 4-cycle (Table 1).
    Mul,  ///< dst = src1 * src2
    // Floating point (bit-pattern arithmetic on the unified file; the
    // distinction matters only for functional-unit latency/contention).
    Fadd, ///< dst = src1 + src2, 2-cycle FP adder
    Fmul, ///< dst = src1 * src2, 4-cycle FP multiplier
    // Memory. Effective address = (src1 + imm) wrapped to the program's
    // data segment and aligned down to 8 bytes.
    Ld,   ///< dst = MEM[EA]
    St,   ///< MEM[EA] = src2
    // Control. Branch targets are absolute static instruction indices.
    Beq,  ///< if (src1 == src2) pc = target
    Bne,  ///< if (src1 != src2) pc = target
    Blt,  ///< if (src1 <  src2) pc = target (unsigned)
    Jmp,  ///< pc = target
    Call, ///< dst = pc + 1; pc = target (dst conventionally r31)
    Ret,  ///< pc = src1 (value previously written by Call)
    Halt, ///< stop the program
};

/** Functional-unit class an opcode executes on (Table 1 execution model). */
enum class FuClass : uint8_t {
    IntAlu, ///< one of 2 integer ALUs, 1-cycle
    IntMul, ///< integer multiplier, 4-cycle
    FpAdd,  ///< FP adder, 2-cycle
    FpMul,  ///< FP multiplier, 4-cycle
    Mem,    ///< the single load/store port
    Branch, ///< the single branch unit
    None,   ///< Nop / Halt
};

/** Number of µISA opcodes (Halt is last). */
constexpr unsigned kNumOpcodes = static_cast<unsigned>(Opcode::Halt) + 1;

/**
 * Per-opcode static traits, precomputed into one small table so the
 * per-instruction replay hot path pays a single indexed load instead of
 * a chain of comparisons (fuClass/fuLatency/isControl are consulted
 * several times per replayed instruction by every core model).
 */
struct OpTraits
{
    FuClass fu = FuClass::None;
    uint8_t latency = 1;       ///< FU execution latency, cycles
    bool isLoad = false;
    bool isStore = false;
    bool isControl = false;    ///< any control transfer
    bool isCondBranch = false; ///< outcome depends on register values
};

namespace detail {

constexpr OpTraits
makeOpTraits(Opcode op)
{
    OpTraits t;
    switch (op) {
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Shl:
      case Opcode::Shr:
      case Opcode::Addi:
      case Opcode::Andi:
        t.fu = FuClass::IntAlu;
        t.latency = 1;
        break;
      case Opcode::Mul:
        t.fu = FuClass::IntMul;
        t.latency = 4; // Table 1: 4-cycle int multiply
        break;
      case Opcode::Fadd:
        t.fu = FuClass::FpAdd;
        t.latency = 2; // Table 1: 2-cycle fp-add
        break;
      case Opcode::Fmul:
        t.fu = FuClass::FpMul;
        t.latency = 4; // Table 1: 4-cycle fp multiply
        break;
      case Opcode::Ld:
      case Opcode::St:
        t.fu = FuClass::Mem;
        t.latency = 1; // address generation; cache latency added separately
        t.isLoad = op == Opcode::Ld;
        t.isStore = op == Opcode::St;
        break;
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Jmp:
      case Opcode::Call:
      case Opcode::Ret:
        t.fu = FuClass::Branch;
        t.latency = 1;
        t.isControl = true;
        t.isCondBranch =
            op == Opcode::Beq || op == Opcode::Bne || op == Opcode::Blt;
        break;
      case Opcode::Nop:
      case Opcode::Halt:
        t.fu = FuClass::None;
        t.latency = 1;
        break;
    }
    return t;
}

constexpr std::array<OpTraits, kNumOpcodes>
makeOpTraitsTable()
{
    std::array<OpTraits, kNumOpcodes> table{};
    for (unsigned i = 0; i < kNumOpcodes; ++i)
        table[i] = makeOpTraits(static_cast<Opcode>(i));
    return table;
}

} // namespace detail

/** The per-opcode trait table (indexed by the opcode's numeric value). */
inline constexpr std::array<OpTraits, kNumOpcodes> kOpTraits =
    detail::makeOpTraitsTable();

/** Traits of @p op. */
inline const OpTraits &
opTraits(Opcode op)
{
    return kOpTraits[static_cast<uint8_t>(op)];
}

/** One static µISA instruction. */
struct Instruction
{
    Opcode op = Opcode::Nop;
    RegId dst = kNoReg;   ///< destination register, kNoReg if none
    RegId src1 = kNoReg;  ///< first source, kNoReg if none
    RegId src2 = kNoReg;  ///< second source, kNoReg if none
    int64_t imm = 0;      ///< immediate (Addi/Andi/Ld/St displacement)
    uint32_t target = 0;  ///< branch/jump/call target (instruction index)

    bool isLoad() const { return opTraits(op).isLoad; }
    bool isStore() const { return opTraits(op).isStore; }
    bool isMem() const { return op == Opcode::Ld || op == Opcode::St; }
    /** Any control transfer. */
    bool isControl() const { return opTraits(op).isControl; }
    /** Conditional control (outcome depends on register values). */
    bool isCondBranch() const { return opTraits(op).isCondBranch; }
    bool hasDst() const { return dst != kNoReg && dst != 0; }
};

/** Functional-unit class of @p op. */
inline FuClass
fuClass(Opcode op)
{
    return opTraits(op).fu;
}

/** Execution latency, in cycles, of @p op on its FU (memory excluded). */
inline unsigned
fuLatency(Opcode op)
{
    return opTraits(op).latency;
}

/** Human-readable mnemonic. */
const char *opcodeName(Opcode op);

/** Disassemble one instruction (for debugging / example output). */
std::string disassemble(const Instruction &inst);

} // namespace icfp

#endif // ICFP_ISA_INSTRUCTION_HH
