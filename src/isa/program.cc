#include "isa/program.hh"

namespace icfp {

void
ProgramBuilder::validate(const Program &p)
{
    const auto n = static_cast<uint32_t>(p.code.size());
    for (size_t idx = 0; idx < p.code.size(); ++idx) {
        const Instruction &i = p.code[idx];
        if (i.isControl() && i.op != Opcode::Ret) {
            if (i.target >= n) {
                ICFP_FATAL("instruction %zu: control target %u out of "
                           "range (program has %u instructions)",
                           idx, i.target, n);
            }
        }
        if (i.dst != kNoReg && i.dst >= kNumRegs)
            ICFP_FATAL("instruction %zu: bad dst register", idx);
        if (i.src1 != kNoReg && i.src1 >= kNumRegs)
            ICFP_FATAL("instruction %zu: bad src1 register", idx);
        if (i.src2 != kNoReg && i.src2 >= kNumRegs)
            ICFP_FATAL("instruction %zu: bad src2 register", idx);
    }
}

} // namespace icfp
