#include "isa/program.hh"

namespace icfp {

void
ProgramBuilder::validate(const Program &p)
{
    const auto n = static_cast<uint32_t>(p.code.size());
    for (size_t idx = 0; idx < p.code.size(); ++idx) {
        const Instruction &i = p.code[idx];
        if (i.isControl() && i.op != Opcode::Ret) {
            if (i.target >= n) {
                ICFP_FATAL("instruction %zu: control target %u out of "
                           "range (program has %u instructions)",
                           idx, i.target, n);
            }
        }
        if (i.dst != kNoReg && i.dst >= kNumRegs)
            ICFP_FATAL("instruction %zu: bad dst register", idx);
        if (i.src1 != kNoReg && i.src1 >= kNumRegs)
            ICFP_FATAL("instruction %zu: bad src1 register", idx);
        if (i.src2 != kNoReg && i.src2 >= kNumRegs)
            ICFP_FATAL("instruction %zu: bad src2 register", idx);
    }
}


std::vector<Addr>
MemoryImage::diffWords(const MemoryImage &other) const
{
    ICFP_ASSERT(words_.size() == other.words_.size());
    std::vector<Addr> dirty;
    for (size_t i = 0; i < words_.size(); ++i) {
        if (words_[i] != other.words_[i])
            dirty.push_back(static_cast<Addr>(i) * kWordBytes);
    }
    return dirty;
}

bool
MemOverlay::matchesFinal(const MemoryImage &final_image,
                         const std::vector<Addr> *dirty_words) const
{
    // Every word this run wrote must hold its golden final value...
    for (const auto &[addr, value] : writes_) {
        if (final_image.read(addr) != value)
            return false;
    }
    if (dirty_words) {
        // ...and every word the golden run changed must have been
        // written here (an unwritten word still shows the base value,
        // which on a dirty word differs from final by definition).
        for (const Addr addr : *dirty_words) {
            if (writes_.find(addr) == writes_.end())
                return false;
        }
        return true;
    }
    // No precomputed diff (hand-built trace): full scan.
    const size_t bytes = final_image.sizeBytes();
    for (Addr addr = 0; addr < bytes; addr += kWordBytes) {
        if (read(addr) != final_image.read(addr))
            return false;
    }
    return true;
}

} // namespace icfp
