#include "isa/interpreter.hh"

#include "common/logging.hh"

namespace icfp {

RegVal
Interpreter::evaluate(Opcode op, RegVal a, RegVal b, int64_t imm)
{
    switch (op) {
      case Opcode::Add: return a + b;
      case Opcode::Sub: return a - b;
      case Opcode::And: return a & b;
      case Opcode::Or: return a | b;
      case Opcode::Xor: return a ^ b;
      case Opcode::Shl: return a << (b & 63);
      case Opcode::Shr: return a >> (b & 63);
      case Opcode::Addi: return a + static_cast<RegVal>(imm);
      case Opcode::Andi: return a & static_cast<RegVal>(imm);
      case Opcode::Mul: return a * b;
      case Opcode::Fadd: return a + b; // bit-pattern arithmetic; FP-ness
      case Opcode::Fmul: return a * b; // only affects FU latency
      default:
        ICFP_PANIC("evaluate() on non-ALU opcode %s", opcodeName(op));
    }
}

bool
Interpreter::branchTaken(Opcode op, RegVal a, RegVal b)
{
    switch (op) {
      case Opcode::Beq: return a == b;
      case Opcode::Bne: return a != b;
      case Opcode::Blt: return a < b;
      default:
        ICFP_PANIC("branchTaken() on non-branch opcode %s", opcodeName(op));
    }
}

Trace
Interpreter::run(const Program &program, uint64_t max_insts)
{
    Trace trace;
    trace.program = std::make_shared<Program>(program);
    trace.insts.reserve(max_insts);
    trace.finalMemory = program.initialMemory;

    RegFileState regs{};
    MemoryImage &mem = trace.finalMemory;

    uint32_t pc = 0;
    const auto code_size = static_cast<uint32_t>(program.code.size());

    for (uint64_t n = 0; n < max_insts; ++n) {
        ICFP_ASSERT(pc < code_size);
        const Instruction &si = program.code[pc];

        DynInst di;
        di.pc = pc;
        di.op = si.op;
        di.dst = si.dst;
        di.src1 = si.src1;
        di.src2 = si.src2;

        const RegVal a = si.src1 == kNoReg ? 0 : regs[si.src1];
        const RegVal b = si.src2 == kNoReg ? 0 : regs[si.src2];

        uint32_t next_pc = pc + 1;

        switch (si.op) {
          case Opcode::Nop:
            break;
          case Opcode::Halt:
            di.nextPc = pc;
            trace.insts.push_back(di);
            trace.halted = true;
            trace.finalRegs = regs;
            return trace;
          case Opcode::Ld:
            di.addr = mem.wrap(a + static_cast<RegVal>(si.imm));
            di.result = mem.read(di.addr);
            break;
          case Opcode::St:
            di.addr = mem.wrap(a + static_cast<RegVal>(si.imm));
            di.storeValue = b;
            mem.write(di.addr, b);
            break;
          case Opcode::Beq:
          case Opcode::Bne:
          case Opcode::Blt:
            di.taken = branchTaken(si.op, a, b);
            if (di.taken)
                next_pc = si.target;
            break;
          case Opcode::Jmp:
            di.taken = true;
            next_pc = si.target;
            break;
          case Opcode::Call:
            di.taken = true;
            di.result = pc + 1;
            next_pc = si.target;
            break;
          case Opcode::Ret:
            di.taken = true;
            next_pc = static_cast<uint32_t>(a);
            ICFP_ASSERT(next_pc < code_size);
            break;
          default:
            di.result = evaluate(si.op, a, b, si.imm);
            break;
        }

        if (si.hasDst())
            regs[si.dst] = di.result;

        di.nextPc = next_pc;
        trace.insts.push_back(di);
        pc = next_pc;
    }

    trace.finalRegs = regs;
    return trace;
}

} // namespace icfp
