#include "isa/interpreter.hh"

#include <algorithm>

#include "common/logging.hh"

namespace icfp {

namespace {

/**
 * Dirty-word list from the store addresses the run actually touched:
 * sort + dedup the touched words and keep those whose final value
 * differs from the initial image. O(stores log stores) — the full-image
 * diff scan this replaces was the single largest trace-generation cost
 * on benchmarks with multi-megabyte data segments.
 */
std::shared_ptr<const std::vector<Addr>>
dirtyFromTouched(std::vector<Addr> touched, const MemoryImage &initial,
                 const MemoryImage &final_image)
{
    std::sort(touched.begin(), touched.end());
    touched.erase(std::unique(touched.begin(), touched.end()),
                  touched.end());
    std::vector<Addr> dirty;
    dirty.reserve(touched.size());
    for (const Addr addr : touched) {
        if (initial.read(addr) != final_image.read(addr))
            dirty.push_back(addr);
    }
    return std::make_shared<const std::vector<Addr>>(std::move(dirty));
}

} // namespace

RegVal
Interpreter::evaluate(Opcode op, RegVal a, RegVal b, int64_t imm)
{
    switch (op) {
      case Opcode::Add: return a + b;
      case Opcode::Sub: return a - b;
      case Opcode::And: return a & b;
      case Opcode::Or: return a | b;
      case Opcode::Xor: return a ^ b;
      case Opcode::Shl: return a << (b & 63);
      case Opcode::Shr: return a >> (b & 63);
      case Opcode::Addi: return a + static_cast<RegVal>(imm);
      case Opcode::Andi: return a & static_cast<RegVal>(imm);
      case Opcode::Mul: return a * b;
      case Opcode::Fadd: return a + b; // bit-pattern arithmetic; FP-ness
      case Opcode::Fmul: return a * b; // only affects FU latency
      default:
        ICFP_PANIC("evaluate() on non-ALU opcode %s", opcodeName(op));
    }
}

bool
Interpreter::branchTaken(Opcode op, RegVal a, RegVal b)
{
    switch (op) {
      case Opcode::Beq: return a == b;
      case Opcode::Bne: return a != b;
      case Opcode::Blt: return a < b;
      default:
        ICFP_PANIC("branchTaken() on non-branch opcode %s", opcodeName(op));
    }
}

Trace
Interpreter::run(const Program &program, uint64_t max_insts)
{
    return run(std::make_shared<Program>(program), max_insts);
}

Trace
Interpreter::run(std::shared_ptr<const Program> program_ptr,
                 uint64_t max_insts)
{
    const Program &program = *program_ptr;
    Trace trace;
    trace.program = std::move(program_ptr);
    // Pre-size: the emit loop below appends at most max_insts records,
    // so for any realistic budget the vector never reallocates mid-run
    // (on 10M+ instruction budgets repeated growth would copy the whole
    // trace several times over). Clamped so an absurd budget over a
    // short halting program cannot demand terabytes up front; past the
    // clamp, normal amortized growth takes over.
    constexpr uint64_t kMaxUpfrontReserve = uint64_t{1} << 25;
    trace.insts.reserve(std::min(max_insts, kMaxUpfrontReserve));
    trace.finalMemory = program.initialMemory;

    RegFileState regs{};
    MemoryImage &mem = trace.finalMemory;
    std::vector<Addr> touched; ///< store targets, for the dirty-word list

    uint32_t pc = 0;
    const auto code_size = static_cast<uint32_t>(program.code.size());

    for (uint64_t n = 0; n < max_insts; ++n) {
        ICFP_ASSERT(pc < code_size);
        const Instruction &si = program.code[pc];

        // Single-pass emit: construct the record in its final slot
        // (reserved above) instead of filling a local and copying it in.
        DynInst &di = trace.insts.emplace_back();
        di.pc = pc;
        di.op = si.op;
        di.dst = si.dst;
        di.src1 = si.src1;
        di.src2 = si.src2;

        const RegVal a = si.src1 == kNoReg ? 0 : regs[si.src1];
        const RegVal b = si.src2 == kNoReg ? 0 : regs[si.src2];

        uint32_t next_pc = pc + 1;

        switch (si.op) {
          case Opcode::Nop:
            break;
          case Opcode::Halt:
            di.nextPc = pc;
            trace.halted = true;
            trace.finalRegs = regs;
            trace.dirtyWords = dirtyFromTouched(
                std::move(touched), program.initialMemory,
                trace.finalMemory);
            return trace;
          case Opcode::Ld:
            di.addr = mem.wrap(a + static_cast<RegVal>(si.imm));
            di.value = mem.read(di.addr);
            break;
          case Opcode::St:
            di.addr = mem.wrap(a + static_cast<RegVal>(si.imm));
            di.value = b;
            mem.write(di.addr, b);
            touched.push_back(di.addr);
            break;
          case Opcode::Beq:
          case Opcode::Bne:
          case Opcode::Blt:
            di.setTaken(branchTaken(si.op, a, b));
            if (di.taken())
                next_pc = si.target;
            break;
          case Opcode::Jmp:
            di.setTaken(true);
            next_pc = si.target;
            break;
          case Opcode::Call:
            di.setTaken(true);
            di.value = pc + 1;
            next_pc = si.target;
            break;
          case Opcode::Ret:
            di.setTaken(true);
            next_pc = static_cast<uint32_t>(a);
            ICFP_ASSERT(next_pc < code_size);
            break;
          default:
            di.value = evaluate(si.op, a, b, si.imm);
            break;
        }

        if (si.hasDst())
            regs[si.dst] = di.value;

        di.nextPc = next_pc;
        pc = next_pc;
    }

    trace.finalRegs = regs;
    trace.dirtyWords = dirtyFromTouched(std::move(touched),
                                        program.initialMemory,
                                        trace.finalMemory);
    return trace;
}

} // namespace icfp
