#include "sltp/sltp_core.hh"

#include "common/logging.hh"
#include "sim/core_registry.hh"

namespace icfp {

namespace {
constexpr Cycle kMaxRunCycles = Cycle{1} << 36;
} // namespace

SltpCore::SltpCore(const CoreParams &core_params, const MemParams &mem_params,
                   const SltpParams &sltp_params)
    : CoreBase("sltp", core_params, mem_params),
      sltp_(sltp_params),
      slice_(sltp_params.sliceEntries)
{
}

void
SltpCore::enterEpoch(size_t miss_idx)
{
    ICFP_ASSERT(!inEpoch_);
    rf0_.checkpoint();
    chkIdx_ = miss_idx;
    inEpoch_ = true;
    inRally_ = false;
    wrongPath_ = false;
    ++result_.advanceEntries;
}

void
SltpCore::beginRally()
{
    ICFP_ASSERT(inEpoch_ && !inRally_);
    inRally_ = true;
    rallyBlockedUntil_ = 0;
    ++result_.rallyPasses;
    // Speculatively written cache lines are discarded before the SRL
    // drains (Section 4) — their re-fetch cost is SLTP's signature
    // overhead (e.g. galgel).
    mem_.dcache().flushPinned();
}

void
SltpCore::endEpoch()
{
    ICFP_ASSERT(inEpoch_);
    ICFP_ASSERT(slice_.noneActive());
    ICFP_ASSERT(!rf0_.anyPoisoned());
    inEpoch_ = false;
    inRally_ = false;
    wrongPath_ = false;
    pending_.clear();
}

void
SltpCore::squash()
{
    ICFP_ASSERT(inEpoch_);
    rf0_.restore();
    slice_.clear();
    pending_.clear();
    while (!srl_.empty() && srl_.back().seq >= chkIdx_)
        srl_.pop_back();
    mem_.dcache().flushPinned();
    bpred_.squashRas();

    inEpoch_ = false;
    inRally_ = false;
    wrongPath_ = false;
    tailIdx_ = chkIdx_;
    fetchReadyAt_ = cycle_ + params_.squashPenalty;
    regReady_.fill(cycle_);
    ++result_.squashes;
}

const SltpCore::SrlEntry *
SltpCore::srlSearch(Addr addr, SeqNum load_seq) const
{
    // Idealized (oracle) memory dependence prediction, per Table 1: the
    // youngest older SRL store to the same address is always identified.
    for (auto it = srl_.rbegin(); it != srl_.rend(); ++it) {
        if (it->seq >= load_seq)
            continue;
        if (it->addr == addr)
            return &*it;
    }
    return nullptr;
}

bool
SltpCore::tailLoad(const DynInst &di)
{
    const SeqNum seq = tailIdx_;
    if (const SrlEntry *st = srlSearch(di.addr, seq)) {
        if (!st->poisoned) {
            ICFP_ASSERT(st->value == di.result());
            rf0_.write(di.dst, st->value, seq);
            setDstReady(di, cycle_ + mem_.params().dcacheHitLatency);
            return true;
        }
        // Poison propagates from the miss-dependent store (idealized
        // dependence prediction).
        ICFP_ASSERT(inEpoch_);
        if (slice_.full()) {
            tailWake_ = cycle_ + 1;
            return false; // SLTP stalls; no fallback mode
        }
        SliceEntry entry;
        entry.traceIdx = static_cast<uint32_t>(tailIdx_);
        entry.seq = seq;
        entry.poison = 1;
        entry.src1Captured = true;
        entry.src1Val = di.src1 == kNoReg ? 0 : rf0_.read(di.src1);
        entry.src2Captured = true;
        slice_.push(entry);
        rf0_.writePoisoned(di.dst, 1, seq);
        ++result_.slicedInsts;
        return true;
    }

    const MemAccessResult r = mem_.load(di.addr, cycle_);
    const bool d_miss = r.missedDcache();
    const bool l2_miss = r.missedL2();

    bool poison_it = false;
    if (inEpoch_) {
        poison_it = l2_miss; // secondary D$ misses block (stall-at-use)
    } else {
        const bool trigger =
            (sltp_.trigger == AdvanceTrigger::AnyDcache && d_miss) ||
            (sltp_.trigger == AdvanceTrigger::L2Only && l2_miss);
        if (trigger) {
            enterEpoch(tailIdx_);
            poison_it = true;
        }
    }

    if (poison_it) {
        // Retrying re-runs the cache access, so no idle-skip here.
        if (slice_.full()) {
            tailWake_ = cycle_ + 1;
            return false;
        }
        SliceEntry entry;
        entry.traceIdx = static_cast<uint32_t>(tailIdx_);
        entry.seq = seq;
        entry.poison = 1;
        entry.src1Captured = true;
        entry.src1Val = di.src1 == kNoReg ? 0 : rf0_.read(di.src1);
        entry.src2Captured = true;
        slice_.push(entry);
        rf0_.writePoisoned(di.dst, 1, seq);
        pending_.push(r.doneAt, 1);
        ++result_.slicedInsts;
        return true;
    }

    const RegVal value = memImage_.read(di.addr);
#ifdef ICFP_DEBUG_SLTP
    if (value != di.result()) {
        std::fprintf(stderr,
            "SLTP MISMATCH tail=%zu pc=%u addr=%lx got=%lx want=%lx "
            "inEpoch=%d inRally=%d chk=%zu srl=%zu op=%d src1=%d\n",
            tailIdx_, di.pc, di.addr, value, di.result(), int(inEpoch_),
            int(inRally_), chkIdx_, srl_.size(), int(di.op), int(di.src1));
        for (const auto &e : srl_)
            std::fprintf(stderr, "  srl seq=%lu addr=%lx val=%lx p=%d\n",
                         e.seq, e.addr, e.value, int(e.poisoned));
    }
#endif
    ICFP_ASSERT(value == di.result());
    rf0_.write(di.dst, value, seq);
    setDstReady(di, r.doneAt);
    return true;
}

bool
SltpCore::divertToSlice(const DynInst &di, PoisonMask poison)
{
    ICFP_ASSERT(inEpoch_);
    const SeqNum seq = tailIdx_;

    if (slice_.full() || (di.isStore() && srl_.size() >= sltp_.srlEntries))
        return false; // SLTP stalls when it runs out of buffering
                      // (state-driven: only a rally frees space)

    SliceEntry entry;
    entry.traceIdx = static_cast<uint32_t>(tailIdx_);
    entry.seq = seq;
    entry.poison = poison;
    entry.src1Captured = di.src1 == kNoReg || rf0_.poison(di.src1) == 0;
    if (entry.src1Captured && di.src1 != kNoReg)
        entry.src1Val = rf0_.read(di.src1);
    else if (!entry.src1Captured)
        entry.src1Producer = rf0_.lastWriter(di.src1);
    entry.src2Captured = di.src2 == kNoReg || rf0_.poison(di.src2) == 0;
    if (entry.src2Captured && di.src2 != kNoReg)
        entry.src2Val = rf0_.read(di.src2);
    else if (!entry.src2Captured)
        entry.src2Producer = rf0_.lastWriter(di.src2);

    if (di.isStore()) {
        // Miss-dependent store: SRL entry with poisoned data. (A poisoned
        // address is handled identically thanks to the oracle dependence
        // predictor; the model knows the address from the trace.)
        SrlEntry srl_entry;
        srl_entry.addr = di.addr;
        srl_entry.seq = seq;
        srl_entry.poisoned = true;
        srl_.push_back(srl_entry);
    }

    if (di.isControl()) {
        entry.pred = bpred_.predict(di);
        if (entry.pred.predNextPc != di.nextPc) {
            wrongPath_ = true;
            ++result_.wrongPathInsts;
        }
    }

    if (di.hasDst())
        rf0_.writePoisoned(di.dst, poison, seq);

    slice_.push(entry);
    ++result_.slicedInsts;
    return true;
}

bool
SltpCore::tailIssueOne(const DynInst &di)
{
    const PoisonMask poison = inEpoch_ ? [&] {
        PoisonMask p = 0;
        if (di.src1 != kNoReg)
            p |= rf0_.poison(di.src1);
        if (di.src2 != kNoReg)
            p |= rf0_.poison(di.src2);
        return p;
    }() : PoisonMask{0};

    if (poison != 0) {
        Cycle ready = 0;
        if (di.src1 != kNoReg && di.src1 != 0 && rf0_.poison(di.src1) == 0)
            ready = std::max(ready, regReady_[di.src1]);
        if (di.src2 != kNoReg && di.src2 != 0 && rf0_.poison(di.src2) == 0)
            ready = std::max(ready, regReady_[di.src2]);
        if (ready > cycle_) {
            tailWake_ = ready;
            return false;
        }
        if (!slots_.available(FuClass::None)) {
            tailWake_ = cycle_ + 1;
            return false;
        }
        if (!divertToSlice(di, poison))
            return false;
        slots_.take(FuClass::None);
        ++tailIdx_;
        ++result_.advanceInsts;
        return true;
    }

    const Cycle src_ready = srcReadyCycle(di);
    if (src_ready > cycle_) {
        tailWake_ = src_ready;
        return false;
    }
    const FuClass fu = fuClass(di.op);
    if (!slots_.available(fu)) {
        tailWake_ = cycle_ + 1;
        return false;
    }

    switch (di.op) {
      case Opcode::Ld:
        if (!tailLoad(di))
            return false;
        break;
      case Opcode::St: {
        if (srl_.size() >= sltp_.srlEntries)
            return false; // state-driven: only a rally frees SRL space
        SrlEntry entry;
        entry.addr = di.addr;
        entry.value = di.storeValue();
        entry.seq = tailIdx_;
        entry.poisoned = false;
        if (inEpoch_) {
            // Speculative write into the D$ so miss-independent loads can
            // forward through the cache; the line is pinned.
            mem_.store(di.addr, cycle_);
            mem_.dcache().setPinned(di.addr, true);
            entry.specWritten = true;
        }
        srl_.push_back(entry);
        break;
      }
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Jmp:
      case Opcode::Call:
      case Opcode::Ret: {
        const BranchPrediction pred = bpred_.predict(di);
        if (di.op == Opcode::Call) {
            rf0_.write(di.dst, di.result(), tailIdx_);
            setDstReady(di, cycle_ + 1);
        }
        resolveBranch(di, pred, cycle_);
        break;
      }
      case Opcode::Nop:
      case Opcode::Halt:
        break;
      default:
        rf0_.write(di.dst, di.result(), tailIdx_);
        setDstReady(di, cycle_ + fuLatency(di.op));
        break;
    }

    slots_.take(fu);
    ++tailIdx_;
    if (inEpoch_)
        ++result_.advanceInsts;
    return true;
}

void
SltpCore::rallyTick()
{
    rallyDidWork_ = false;
    rallyWake_ = kCycleNever;
    if (cycle_ < rallyBlockedUntil_) {
        rallyWake_ = rallyBlockedUntil_;
        return;
    }

    // Program-order interleave of SRL drain and slice re-execution: the
    // SRL head drains when everything older has re-executed; a slice
    // entry executes when every older SRL store has drained.
    const SeqNum oldest_slice = slice_.oldestActiveSeq();

    // 1) Drain the SRL head if possible (one store per cycle).
    if (!srl_.empty()) {
        const SrlEntry &head = srl_.front();
        if (!head.poisoned && head.seq < oldest_slice) {
            mem_.store(head.addr, cycle_);
            memImage_.write(head.addr, head.value);
            srl_.pop_front();
            rallyDidWork_ = true;
        }
    }

    // 2) Execute the oldest active slice entry if it precedes the SRL
    //    head (equal seq = the store's own SRL entry: execute first).
    if (slice_.noneActive()) {
        if (srl_.empty()) {
            endEpoch();
            rallyDidWork_ = true;
        }
        return;
    }
    size_t pos = slice_.headIndex();
    while (pos < slice_.endIndex() && !slice_.at(pos).active)
        ++pos;
    ICFP_ASSERT(pos < slice_.endIndex());
    SliceEntry &entry = slice_.at(pos);
    if (!srl_.empty() && srl_.front().seq < entry.seq)
        return; // an older store must drain first

    const DynInst &di = trace_->insts[entry.traceIdx];
    const Instruction &si = trace_->program->code[di.pc];

    // Operand delivery: insert-time captures travel with the entry, and
    // publish() below delivers producer results straight into younger
    // entries — the in-order blocking rally guarantees every producer
    // resolved (and delivered) before its consumer executes.
    ICFP_ASSERT(entry.src1Captured && entry.src2Captured);
    if (entry.src1ReadyAt > cycle_) {
        rallyWake_ = entry.src1ReadyAt;
        return;
    }
    if (entry.src2ReadyAt > cycle_) {
        rallyWake_ = entry.src2ReadyAt;
        return;
    }

    const RegVal a = entry.src1Val;
    const RegVal b = entry.src2Val;

    auto publish = [&](RegVal value, Cycle ready_at) {
        if (di.hasDst()) {
            slice_.deliverFrom(pos, entry.seq, value, ready_at);
            if (rf0_.writeGated(di.dst, value, entry.seq))
                regReady_[di.dst] = ready_at;
        }
        slice_.resolve(pos);
        ++result_.rallyInsts;
        rallyDidWork_ = true;
    };

    switch (di.op) {
      case Opcode::Ld: {
        const Addr addr = memImage_.wrap(a + static_cast<RegVal>(si.imm));
        ICFP_ASSERT(addr == di.addr);
        if (const SrlEntry *st = srlSearch(addr, entry.seq)) {
            ICFP_ASSERT(!st->poisoned); // older slices resolved in order
            ICFP_ASSERT(st->value == di.result());
            publish(st->value, cycle_ + mem_.params().dcacheHitLatency);
            return;
        }
        const MemAccessResult r = mem_.load(addr, cycle_);
        if (r.missedDcache()) {
            // Blocking rally: stall right here until the fill. The
            // access itself touched the hierarchy, so this cycle counts
            // as active; subsequent cycles sleep until the fill.
            rallyBlockedUntil_ = r.doneAt;
            rallyDidWork_ = true;
            return;
        }
        const RegVal value = memImage_.read(addr);
        ICFP_ASSERT(value == di.result());
        publish(value, r.doneAt);
        return;
      }
      case Opcode::St: {
        // Fill in the SRL entry's value (it is the first poisoned entry
        // at or after the head with this seq).
        ICFP_ASSERT(b == di.storeValue());
        for (SrlEntry &srl_entry : srl_) {
            if (srl_entry.seq == entry.seq) {
                srl_entry.value = b;
                srl_entry.poisoned = false;
                break;
            }
        }
        slice_.resolve(pos);
        ++result_.rallyInsts;
        rallyDidWork_ = true;
        return;
      }
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Ret: {
        const bool correct = entry.pred.predNextPc == di.nextPc;
        bpred_.resolve(di, entry.pred);
        ++result_.rallyInsts;
        slice_.resolve(pos);
        rallyDidWork_ = true;
        if (!correct) {
            // The blocking rally resolves strictly in order, so when a
            // poisoned branch turns out mispredicted everything older is
            // already complete and nothing younger was fetched (the tail
            // halted at the unverified branch). Recovery is a front-end
            // redirect backed by SLTP's second checkpoint — no state
            // rollback is needed; the drained SRL prefix stays valid.
            wrongPath_ = false;
            fetchReadyAt_ =
                std::max(fetchReadyAt_, cycle_ + params_.squashPenalty);
            bpred_.squashRas();
            ++result_.squashes;
        }
        return;
      }
      default: {
        const RegVal value = Interpreter::evaluate(di.op, a, b, si.imm);
        ICFP_ASSERT(value == di.result());
        publish(value, cycle_ + fuLatency(di.op));
        return;
      }
    }
}

RunResult
SltpCore::run(const Trace &trace)
{
    resetRunState();
    result_ = RunResult{};
    trace_ = &trace;
    traceLen_ = trace.size();
    result_.instructions = traceLen_;

    memImage_.reset(&trace.program->initialMemory);
    rf0_.clearAll();
    slice_.clear();
    srl_.clear();
    pending_.clear();
    tailIdx_ = 0;
    inEpoch_ = false;
    inRally_ = false;
    wrongPath_ = false;
    rallyBlockedUntil_ = 0;

    while (tailIdx_ < traceLen_ || inEpoch_ || !srl_.empty()) {
        ICFP_ASSERT(cycle_ < kMaxRunCycles);
        slots_.reset();

        bool did_work = false;
        Cycle wake = kCycleNever;

        if (inEpoch_ && !inRally_ && pending_.popReturned(cycle_) != 0) {
            beginRally();
            did_work = true;
        }

        if (inRally_) {
            // Tail stalls; the rally owns the pipeline.
            rallyTick();
            did_work = did_work || rallyDidWork_;
            wake = rallyWake_;
        } else {
            // Outside a rally, the SRL head may drain one store per cycle
            // as long as it is past the active checkpoint window.
            if (!srl_.empty()) {
                const SrlEntry &head = srl_.front();
                const bool safe =
                    !head.poisoned && (!inEpoch_ || head.seq < chkIdx_);
                if (safe) {
                    mem_.store(head.addr, cycle_);
                    memImage_.write(head.addr, head.value);
                    srl_.pop_front();
                    did_work = true;
                }
                // An unsafe head is state-driven (a rally frees it).
            }
            if (wrongPath_) {
                // State-driven: the pending miss return starts the rally
                // that verifies the bad branch.
            } else if (cycle_ < fetchReadyAt_) {
                wake = fetchReadyAt_;
            } else {
                while (tailIdx_ < traceLen_ &&
                       slots_.used() < params_.issueWidth) {
                    tailWake_ = kCycleNever;
                    if (!tailIssueOne(trace.insts[tailIdx_])) {
                        wake = std::min(wake, tailWake_);
                        break;
                    }
                    did_work = true;
                    if (wrongPath_ || cycle_ < fetchReadyAt_)
                        break;
                }
                if (slots_.used() >= params_.issueWidth)
                    wake = std::min(wake, cycle_ + 1);
            }
            // A pending miss return starts the next rally.
            if (inEpoch_)
                wake = std::min(wake, pending_.nextFillAt());
        }

        // Idle-cycle fast-forward (exact: an idle cycle leaves no trace
        // but the clock, so jumping to the next possible event preserves
        // every cycle count and counter).
        if (did_work || wake == kCycleNever)
            ++cycle_;
        else
            cycle_ = std::max(cycle_ + 1, wake);
    }

    ICFP_ASSERT(!rf0_.anyPoisoned());
    const RegFileState final_regs = rf0_.values();
    for (int r = 1; r < kNumRegs; ++r)
        ICFP_ASSERT(final_regs[r] == trace.finalRegs[r]);
    ICFP_ASSERT(memImage_.matchesFinal(trace.finalMemory, trace.dirty()));

    result_.cycles = cycle_;
    finishStats(&result_);
    return result_;
}

} // namespace icfp

namespace icfp {
namespace {

/** Self-registration with the core-model registry (sim/core_registry.hh). */
const CoreRegistrar registerSltp(
    CoreKind::Sltp, "sltp", {},
    [](const SimConfig &cfg) {
        return makeCoreModel<SltpCore>(cfg.core, cfg.mem, cfg.sltp);
    });

} // namespace
} // namespace icfp
