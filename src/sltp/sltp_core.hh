/**
 * @file
 * SLTP — the Simple Latency Tolerant Processor (Nekkalapu et al., ICCD
 * 2008; Sections 2, 4 and 5.2 of the paper).
 *
 * SLTP, like iCFP, commits miss-independent advance instructions and
 * defers miss-dependent slices. It differs in two load-bearing ways:
 *
 *  1. Memory system: advance stores append to an SRL (store redo log —
 *     a plain FIFO); miss-independent stores additionally write the data
 *     cache *speculatively* (those lines are pinned and cannot be
 *     evicted). When a rally begins, speculatively written lines are
 *     flushed, and the SRL is drained to the cache interleaved with slice
 *     re-execution in program order — the drain both delays the rally and
 *     re-misses the flushed lines.
 *
 *  2. Blocking, single-pass rallies: a slice load that misses stalls the
 *     rally until it returns; the tail cannot resume until the rally
 *     completes and the SRL is fully drained. This is what limits SLTP in
 *     dependent-miss scenarios (Figure 1c/1d).
 *
 * Per Table 1 the memory dependence prediction that propagates poison
 * from SRL stores to forwarding loads is idealized (oracle), as is the
 * verification load queue.
 */

#ifndef ICFP_SLTP_SLTP_CORE_HH
#define ICFP_SLTP_SLTP_CORE_HH

#include <deque>

#include "core/core_base.hh"
#include "core/register_file.hh"
#include "icfp/poison.hh"
#include "icfp/slice_buffer.hh"
#include "sltp/sltp_params.hh"

namespace icfp {

/** The SLTP core model. */
class SltpCore : public CoreBase
{
  public:
    SltpCore(const CoreParams &core_params, const MemParams &mem_params,
             const SltpParams &sltp_params = SltpParams{});

    RunResult run(const Trace &trace) override;

  private:
    /** One SRL (store redo log) entry. */
    struct SrlEntry
    {
        Addr addr = 0;
        RegVal value = 0;
        SeqNum seq = 0;
        bool poisoned = false;   ///< data not yet produced
        bool specWritten = false;///< also written (pinned) in the D$
    };

    void enterEpoch(size_t miss_idx);
    void beginRally();
    void endEpoch();
    void squash();

    bool tailIssueOne(const DynInst &di);
    bool tailLoad(const DynInst &di);
    bool divertToSlice(const DynInst &di, PoisonMask poison);
    void rallyTick();

    /** Oracle SRL search: youngest older store matching @p addr. */
    const SrlEntry *srlSearch(Addr addr, SeqNum load_seq) const;

    SltpParams sltp_;

    const Trace *trace_ = nullptr;
    size_t traceLen_ = 0;

    MemOverlay memImage_;
    RegisterFile rf0_;
    SliceBuffer slice_;
    std::deque<SrlEntry> srl_;

    size_t tailIdx_ = 0;
    bool inEpoch_ = false;
    bool inRally_ = false;
    size_t chkIdx_ = 0;
    bool wrongPath_ = false;

    PendingMissQueue pending_;
    Cycle rallyBlockedUntil_ = 0;

    // Idle-skip bookkeeping (valid within a cycle): next time-driven
    // attempt cycle when a phase stalls, kCycleNever = state-driven.
    Cycle tailWake_ = 0;
    bool rallyDidWork_ = false;
    Cycle rallyWake_ = 0;

    RunResult result_;
};

} // namespace icfp

#endif // ICFP_SLTP_SLTP_CORE_HH
