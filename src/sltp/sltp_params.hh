/**
 * @file
 * SLTP configuration, split from sltp_core.hh so configuration consumers
 * (sim/core_registry.hh's SimConfig, the sweep engine, the harnesses)
 * can be compiled without pulling in the core model itself.
 */

#ifndef ICFP_SLTP_SLTP_PARAMS_HH
#define ICFP_SLTP_SLTP_PARAMS_HH

#include "core/params.hh"

namespace icfp {

/** SLTP configuration (Table 1). */
struct SltpParams
{
    AdvanceTrigger trigger = AdvanceTrigger::L2Only; ///< Figure 5 setting
    unsigned srlEntries = 128;
    unsigned sliceEntries = 128;
};

} // namespace icfp

#endif // ICFP_SLTP_SLTP_PARAMS_HH
