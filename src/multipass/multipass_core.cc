#include "multipass/multipass_core.hh"

#include "common/logging.hh"
#include "sim/core_registry.hh"

namespace icfp {

namespace {
constexpr Cycle kMaxRunCycles = Cycle{1} << 36;
} // namespace

MultipassCore::MultipassCore(const CoreParams &core_params,
                             const MemParams &mem_params,
                             const MultipassParams &mp_params)
    : CoreBase("multipass", core_params, mem_params),
      mp_(mp_params),
      fcache_(mp_params.forwardCacheEntries)
{
}

void
MultipassCore::enterEpisode(size_t after_idx)
{
    ICFP_ASSERT(!inEpisode_);
    inEpisode_ = true;
    bPos_ = after_idx;
    frontier_ = after_idx;
    window_.clear();
    wrongPath_ = false;
    poison_.fill(false);
    aReady_ = regReady_;
    bReady_ = regReady_;
    ++result_.advanceEntries;
}

void
MultipassCore::exitEpisode()
{
    ICFP_ASSERT(inEpisode_ && window_.empty());
    inEpisode_ = false;
    resyncPending_ = false;
    fcache_.clear();
    poison_.fill(false);
    regReady_ = bReady_;
    ++result_.rallyPasses;
}

void
MultipassCore::resyncAdvance()
{
    ICFP_ASSERT(inEpisode_);
    frontier_ = bPos_;
    window_.clear();
    fcache_.clear();
    wrongPath_ = false;
    resyncPending_ = false;
    aReady_ = bReady_;
    // Registers whose data is still far away stay poisoned for the new
    // pass; everything else carries the committed value.
    const Cycle horizon = cycle_ + mem_.params().l2HitLatency;
    for (int r = 1; r < kNumRegs; ++r) {
        if (bReady_[r] > horizon) {
            poison_[r] = true;
            aReady_[r] = cycle_;
        } else {
            poison_[r] = false;
        }
    }
    ++result_.rallyPasses;
}

bool
MultipassCore::advanceOne(const DynInst &di)
{
    if (window_.size() >= mp_.instBufferEntries)
        return false; // instruction buffer full: the A-pipe stalls
                      // (state-driven: the B-pipe must drain the window)

    const bool p1 = di.src1 != kNoReg && poison_[di.src1];
    const bool p2 = di.src2 != kNoReg && poison_[di.src2];
    const bool poisoned = p1 || p2;

    Cycle ready = 0;
    if (di.src1 != kNoReg && di.src1 != 0 && !p1)
        ready = std::max(ready, aReady_[di.src1]);
    if (di.src2 != kNoReg && di.src2 != 0 && !p2)
        ready = std::max(ready, aReady_[di.src2]);
    if (ready > cycle_) {
        aWake_ = ready;
        return false;
    }

    const FuClass fu = poisoned ? FuClass::None : fuClass(di.op);
    if (!slots_.available(fu)) {
        aWake_ = cycle_ + 1;
        return false;
    }

    WinEntry entry;
    entry.resolved = !poisoned;

    auto set_dst = [&](bool dst_poisoned, Cycle ready_at) {
        if (di.dst == kNoReg || di.dst == 0)
            return;
        poison_[di.dst] = dst_poisoned;
        aReady_[di.dst] = ready_at;
    };

    if (!poisoned) {
        switch (di.op) {
          case Opcode::Ld: {
            const RunaheadCacheResult fc = fcache_.read(di.addr);
            if (fc.hit) {
                set_dst(fc.poisoned,
                        cycle_ + mem_.params().dcacheHitLatency);
                entry.resolved = !fc.poisoned;
                break;
            }
            const MemAccessResult r = mem_.load(di.addr, cycle_);
            if (r.missedL2()) {
                // Prefetch generated; the B-pipe will pick up the data.
                set_dst(true, cycle_);
                entry.resolved = false;
            } else {
                // D$ hit — or a secondary D$ miss, which Multipass blocks
                // on (stall-at-use).
                set_dst(false, r.doneAt);
            }
            break;
          }
          case Opcode::St:
            fcache_.write(di.addr, di.storeValue(), false);
            break;
          case Opcode::Beq:
          case Opcode::Bne:
          case Opcode::Blt:
          case Opcode::Jmp:
          case Opcode::Call:
          case Opcode::Ret: {
            entry.pred = bpred_.predict(di);
            if (di.op == Opcode::Call)
                set_dst(false, cycle_ + 1);
            resolveBranch(di, entry.pred, cycle_);
            break;
          }
          case Opcode::Nop:
          case Opcode::Halt:
            break;
          default:
            set_dst(false, cycle_ + fuLatency(di.op));
            break;
        }
    } else {
        if (di.hasDst())
            set_dst(true, cycle_);
        if (di.isStore() && !p1)
            fcache_.write(di.addr, 0, true);
        if (di.isControl()) {
            entry.pred = bpred_.predict(di);
            if (entry.pred.predNextPc != di.nextPc) {
                // Wrong path until the B-pipe verifies this branch.
                wrongPath_ = true;
                ++result_.wrongPathInsts;
            }
        }
    }

    window_.push_back(entry);
    slots_.take(fu);
    ++frontier_;
    ++result_.advanceInsts;
    return true;
}

bool
MultipassCore::commitOne(SimpleStoreBuffer *sb, MemOverlay *memory)
{
    if (window_.empty())
        return false; // state-driven: the A-pipe must refill the window
    const WinEntry entry = window_.front();
    const DynInst &di = trace_->insts[bPos_];

    // Recorded results break dependences: no operand wait. Everything
    // else uses a normal non-blocking scoreboard.
    if (!entry.resolved) {
        Cycle ready = 0;
        if (di.src1 != kNoReg && di.src1 != 0)
            ready = std::max(ready, bReady_[di.src1]);
        if (di.src2 != kNoReg && di.src2 != 0)
            ready = std::max(ready, bReady_[di.src2]);
        if (ready > cycle_) {
            bWake_ = ready;
            return false;
        }
    }

    // The B-pipe is flea-flicker's dedicated second (architectural)
    // pipeline: it has its own issue slots rather than sharing the
    // A-pipe's — that duplicated backend is exactly what Multipass pays
    // area for (Section 5.3).
    const FuClass fu = fuClass(di.op);
    if (!bSlots_.available(fu)) {
        bWake_ = cycle_ + 1;
        return false;
    }

    auto set_dst = [&](Cycle ready_at) {
        if (di.dst != kNoReg && di.dst != 0)
            bReady_[di.dst] = ready_at;
    };

    switch (di.op) {
      case Opcode::Ld: {
        RegVal fwd;
        if (sb->forward(di.addr, &fwd)) {
            ICFP_ASSERT(fwd == di.result());
            set_dst(cycle_ + mem_.params().dcacheHitLatency);
        } else if (entry.resolved) {
            // The A-pipe already executed it (forwarding cache or D$).
            set_dst(cycle_ + mem_.params().dcacheHitLatency);
        } else {
            const MemAccessResult r = mem_.load(di.addr, cycle_);
            ICFP_ASSERT(memory->read(di.addr) == di.result());
            set_dst(r.doneAt);
            // A long miss at the commit point starts another advance
            // pass with up-to-date register state.
            if (r.missedL2())
                resyncPending_ = true;
        }
        break;
      }
      case Opcode::St: {
        if (sb->full()) {
            const Cycle free_at = std::max(sb->headFreeAt(), cycle_ + 1);
            if (free_at > cycle_) {
                bWake_ = free_at; // the head drain frees a slot then
                return false;
            }
        }
        const MemAccessResult r = mem_.store(di.addr, cycle_);
        sb->push(di.addr, di.storeValue(), r.doneAt);
        break;
      }
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Jmp:
      case Opcode::Call:
      case Opcode::Ret: {
        if (di.op == Opcode::Call)
            set_dst(cycle_ + 1);
        if (!entry.resolved) {
            // A poisoned branch the A-pipe could only predict: verify.
            const bool correct = entry.pred.predNextPc == di.nextPc;
            bpred_.resolve(di, entry.pred);
            if (!correct) {
                // Everything the A-pipe did past this branch was
                // wrong-path (in this trace-driven model the A-pipe
                // halted there); redirect and resume advancing.
                ICFP_ASSERT(bPos_ + 1 == frontier_);
                wrongPath_ = false;
                fetchReadyAt_ = std::max(
                    fetchReadyAt_, cycle_ + params_.mispredictPenalty);
                ++result_.squashes;
            }
        }
        break;
      }
      case Opcode::Nop:
      case Opcode::Halt:
        break;
      default:
        set_dst(cycle_ + (entry.resolved ? 1 : fuLatency(di.op)));
        break;
    }

    window_.pop_front();
    ++bPos_;
    bSlots_.take(fu);
    ++result_.rallyInsts;
    return true;
}

RunResult
MultipassCore::run(const Trace &trace)
{
    resetRunState();
    result_ = RunResult{};
    trace_ = &trace;
    traceLen_ = trace.size();
    result_.instructions = traceLen_;

    SimpleStoreBuffer sb(params_.storeBufferEntries);
    MemOverlay memory(&trace.program->initialMemory);

    size_t idx = 0;
    inEpisode_ = false;
    poison_.fill(false);
#ifdef ICFP_DEBUG_MP
    uint64_t dbgAStarved = 0, dbgBWait = 0;
#endif

    while (idx < traceLen_ || inEpisode_) {
        ICFP_ASSERT(cycle_ < kMaxRunCycles);
        slots_.reset();
        sb.drain(cycle_, &memory);

        if (inEpisode_) {
            const bool resynced = resyncPending_;
            if (resyncPending_)
                resyncAdvance();
            Cycle wake = kCycleNever;
            bool did_work = resynced;
#ifdef ICFP_DEBUG_MP
            if (window_.empty()) ++dbgAStarved;
            else {
                const DynInst &dd = trace[bPos_];
                Cycle rdy = 0;
                if (!window_.front().resolved) {
                    if (dd.src1 != kNoReg && dd.src1 != 0) rdy = std::max(rdy, bReady_[dd.src1]);
                    if (dd.src2 != kNoReg && dd.src2 != 0) rdy = std::max(rdy, bReady_[dd.src2]);
                }
                if (rdy > cycle_) ++dbgBWait;
            }
            if (cycle_ % 100000 == 99999)
                std::fprintf(stderr, "MPDBG c=%lu starved=%lu bwait=%lu win=%zu bPos=%zu front=%zu\n",
                             cycle_, dbgAStarved, dbgBWait, window_.size(), bPos_, frontier_);
#endif
            // B-pipe (architectural, dedicated pipeline)...
            bSlots_.reset();
            while (bSlots_.used() < params_.issueWidth) {
                bWake_ = kCycleNever;
                if (!commitOne(&sb, &memory)) {
                    wake = std::min(wake, bWake_);
                    break;
                }
                did_work = true;
            }
            if (bSlots_.used() >= params_.issueWidth)
                wake = std::min(wake, cycle_ + 1);
            // ...then the A-pipe advances with the leftover slots.
            if (wrongPath_) {
                // State-driven: the B-pipe resolves the bad branch.
            } else if (cycle_ < fetchReadyAt_) {
                wake = std::min(wake, fetchReadyAt_);
            } else {
                while (frontier_ < traceLen_ &&
                       slots_.used() < params_.issueWidth) {
                    aWake_ = kCycleNever;
                    if (!advanceOne(trace[frontier_])) {
                        wake = std::min(wake, aWake_);
                        break;
                    }
                    did_work = true;
                    if (wrongPath_ || cycle_ < fetchReadyAt_)
                        break;
                }
                if (slots_.used() >= params_.issueWidth)
                    wake = std::min(wake, cycle_ + 1);
            }
            // The episode ends when the B-pipe has caught the frontier
            // after the triggering miss has returned AND no memory-class
            // data is still outstanding — ending mid-miss would forfeit
            // the lookahead, while lingering past the last miss would
            // just double the issue-bandwidth demand.
            if (window_.empty()) {
                if (cycle_ < triggerReturnAt_) {
                    wake = std::min(wake, triggerReturnAt_);
                } else {
                    Cycle max_ready = 0;
                    for (int r = 1; r < kNumRegs; ++r)
                        max_ready = std::max(max_ready, bReady_[r]);
                    const Cycle horizon =
                        cycle_ + mem_.params().l2HitLatency;
                    if (max_ready <= horizon) {
                        idx = bPos_;
                        exitEpisode();
                        did_work = true;
                    } else {
                        // With frozen state the idle test first passes
                        // when the horizon reaches the latest bReady.
                        wake = std::min(
                            wake, max_ready - mem_.params().l2HitLatency);
                    }
                }
            }
            if (did_work || wake == kCycleNever)
                ++cycle_;
            else
                cycle_ = std::max(cycle_ + 1, wake);
            continue;
        }

        // ---- normal in-order execution -----------------------------------
        Cycle wake = kCycleNever;
        bool issued = false;
        while (idx < traceLen_ && slots_.used() < params_.issueWidth) {
            const DynInst &di = trace[idx];
            if (cycle_ < fetchReadyAt_) {
                wake = fetchReadyAt_;
                break;
            }
            const Cycle src_ready = srcReadyCycle(di);
            if (src_ready > cycle_) {
                wake = src_ready;
                break;
            }
            const FuClass fu = fuClass(di.op);
            if (!slots_.available(fu)) {
                wake = cycle_ + 1;
                break;
            }

            bool entered = false;
            switch (di.op) {
              case Opcode::Ld: {
                RegVal fwd;
                if (sb.forward(di.addr, &fwd)) {
                    ICFP_ASSERT(fwd == di.result());
                    setDstReady(di, cycle_ + mem_.params().dcacheHitLatency);
                    break;
                }
                const MemAccessResult r = mem_.load(di.addr, cycle_);
                const bool trig =
                    (mp_.trigger == AdvanceTrigger::AnyDcache &&
                     r.missedDcache()) ||
                    (mp_.trigger == AdvanceTrigger::L2Only && r.missedL2());
                ICFP_ASSERT(memory.read(di.addr) == di.result());
                setDstReady(di, r.doneAt);
                if (trig) {
                    // Un-block: buffer everything after the load and let
                    // the B-pipe pick it up with the A-pipe running ahead.
                    enterEpisode(idx + 1);
                    triggerReturnAt_ = r.doneAt;
                    if (di.dst != kNoReg && di.dst != 0) {
                        // The A-pipe advances past the miss by poisoning
                        // its result; the B-pipe waits for the real data.
                        poison_[di.dst] = true;
                        aReady_[di.dst] = cycle_;
                        bReady_[di.dst] = r.doneAt;
                    }
                    entered = true;
                }
                break;
              }
              case Opcode::St: {
                if (sb.full()) {
                    const Cycle free_at =
                        std::max(sb.headFreeAt(), cycle_ + 1);
                    fetchReadyAt_ = std::max(fetchReadyAt_, free_at);
                    wake = fetchReadyAt_;
                    goto cycle_done;
                }
                const MemAccessResult r = mem_.store(di.addr, cycle_);
                sb.push(di.addr, di.storeValue(), r.doneAt);
                break;
              }
              case Opcode::Beq:
              case Opcode::Bne:
              case Opcode::Blt:
              case Opcode::Jmp:
              case Opcode::Call:
              case Opcode::Ret: {
                const BranchPrediction pred = bpred_.predict(di);
                if (di.op == Opcode::Call)
                    setDstReady(di, cycle_ + 1);
                resolveBranch(di, pred, cycle_);
                break;
              }
              case Opcode::Nop:
              case Opcode::Halt:
                break;
              default:
                setDstReady(di, cycle_ + fuLatency(di.op));
                break;
            }

            slots_.take(fu);
            ++idx;
            issued = true;
            if (entered)
                break;
        }

      cycle_done:
        if (issued || wake == kCycleNever)
            ++cycle_;
        else
            cycle_ = std::max(cycle_ + 1, wake);
    }

    sb.flush(&memory);
    ICFP_ASSERT(memory.matchesFinal(trace.finalMemory, trace.dirty()));

    result_.cycles = cycle_;
    finishStats(&result_);
    return result_;
}

} // namespace icfp

namespace icfp {
namespace {

/** Self-registration with the core-model registry (sim/core_registry.hh). */
const CoreRegistrar registerMultipass(
    CoreKind::Multipass, "multipass", {"mp"},
    [](const SimConfig &cfg) {
        return makeCoreModel<MultipassCore>(cfg.core, cfg.mem, cfg.multipass);
    });

} // namespace
} // namespace icfp
