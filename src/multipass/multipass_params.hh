/**
 * @file
 * Multipass configuration, split from multipass_core.hh so configuration
 * consumers (sim/core_registry.hh's SimConfig, the sweep engine, the
 * harnesses) can be compiled without pulling in the core model itself.
 */

#ifndef ICFP_MULTIPASS_MULTIPASS_PARAMS_HH
#define ICFP_MULTIPASS_MULTIPASS_PARAMS_HH

#include "core/params.hh"

namespace icfp {

/** Multipass configuration. */
struct MultipassParams
{
    /** Figure 5: L2 misses and primary data cache misses. */
    AdvanceTrigger trigger = AdvanceTrigger::AnyDcache;
    unsigned instBufferEntries = 128;    ///< Table 1
    unsigned forwardCacheEntries = 256;  ///< Table 1 ("runahead cache")
};

} // namespace icfp

#endif // ICFP_MULTIPASS_MULTIPASS_PARAMS_HH
