/**
 * @file
 * "Flea-flicker" Multipass pipelining (Barnes, Ryoo & Hwu, MICRO 2005;
 * Sections 2 and 4 of the paper).
 *
 * Like Runahead, Multipass un-blocks the pipeline under a miss and must
 * re-process *all* post-miss instructions; unlike Runahead it buffers
 * them (128-entry instruction buffer) together with the results of
 * miss-independent advance instructions, and re-execution reuses those
 * results to break dependences.
 *
 * The model follows the flea-flicker structure: an advance "A-pipe" runs
 * ahead at the frontier (poisoning miss-dependent results, forwarding
 * through a lossy forwarding cache, generating prefetches), while a
 * trailing architectural "B-pipe" re-executes the buffered window in
 * order — instructions with recorded results issue without waiting on
 * their operands; the rest execute with a normal non-blocking scoreboard.
 * The two share the 2-wide pipeline, B given priority. The episode ends
 * when the B-pipe catches the frontier.
 *
 * Per the paper's Figure 5 configuration, Multipass advances under all
 * L2 misses and primary data-cache misses, and blocks on secondary
 * data-cache misses.
 */

#ifndef ICFP_MULTIPASS_MULTIPASS_CORE_HH
#define ICFP_MULTIPASS_MULTIPASS_CORE_HH

#include <deque>

#include "core/core_base.hh"
#include "multipass/multipass_params.hh"
#include "runahead/runahead_cache.hh"

namespace icfp {

/** The Multipass core model. */
class MultipassCore : public CoreBase
{
  public:
    MultipassCore(const CoreParams &core_params, const MemParams &mem_params,
                  const MultipassParams &mp_params = MultipassParams{});

    RunResult run(const Trace &trace) override;

  private:
    /** Per-buffered-instruction state. */
    struct WinEntry
    {
        bool resolved = false;  ///< A-pipe recorded a result for it
        BranchPrediction pred{};///< fetch-time prediction (control only)
    };

    void enterEpisode(size_t after_idx);
    void exitEpisode();
    /**
     * Start a new advance pass from the architectural point: the paper's
     * "multipass" — each long-miss commit re-launches the A-pipe with
     * current register state so it can expose the next round of misses
     * (without this, poison accumulated in the A-pipe's registers would
     * blind it after one pass).
     */
    void resyncAdvance();

    /** One A-pipe (advance) instruction; false = stop issuing. */
    bool advanceOne(const DynInst &di);

    /** advanceOne()'s next time-driven attempt cycle when it returns
     *  false (kCycleNever = state-driven; idle-skip bookkeeping). */
    Cycle aWake_ = 0;
    /** One B-pipe (architectural re-execution) step; false = stall. */
    bool commitOne(SimpleStoreBuffer *sb, MemOverlay *memory);

    /** commitOne()'s next time-driven attempt cycle when it returns
     *  false (kCycleNever = state-driven; idle-skip bookkeeping). */
    Cycle bWake_ = 0;

    MultipassParams mp_;
    RunaheadCache fcache_;
    IssueSlots bSlots_{params_}; ///< the B-pipe's own issue bandwidth

    const Trace *trace_ = nullptr;
    size_t traceLen_ = 0;

    bool inEpisode_ = false;
    Cycle triggerReturnAt_ = 0; ///< the triggering miss's fill time
    size_t bPos_ = 0;     ///< B-pipe position (= window base)
    size_t frontier_ = 0; ///< A-pipe position (window end)
    std::deque<WinEntry> window_; ///< parallel to [bPos_, frontier_)
    bool wrongPath_ = false;
    bool resyncPending_ = false;

    std::array<bool, kNumRegs> poison_{};   ///< A-pipe poison
    std::array<Cycle, kNumRegs> aReady_{};  ///< A-pipe operand timing
    std::array<Cycle, kNumRegs> bReady_{};  ///< B-pipe operand timing

    RunResult result_;
};

} // namespace icfp

#endif // ICFP_MULTIPASS_MULTIPASS_CORE_HH
