/**
 * @file
 * icfp-sim — command-line driver for the simulation library.
 *
 * Subcommands:
 *   list                         show the benchmark analog suite
 *   cores                        show the registered core models
 *   run     --bench B --core C   run one model, print full statistics
 *   compare --bench B            run every model on one benchmark
 *   suite   --core C             run one model over the whole suite
 *   sweep   [--benches ...] [--cores ...]  run a (bench × core) grid
 *   trace   --bench B --save-trace F   generate + save a golden trace
 *   disasm  --bench B [--n N]    print the first N dynamic instructions
 *
 * Common options:
 *   --insts N        dynamic instruction budget (default 200000)
 *   --seed S         workload RNG seed override
 *   --l2-lat N       L2 hit latency in cycles (Figure 6 sweeps)
 *   --mem-lat N      memory latency in cycles
 *   --poison-bits N  iCFP poison-vector width (1..16)
 *   --trigger T      advance trigger: none | l2 | any
 *   --blocking-rally use single blocking rallies (SLTP-style iCFP)
 *   --no-mt-rally    disable multithreaded rally+tail execution
 *   --load-trace F   replay a saved trace instead of generating one
 *   --save-trace F   also save the generated trace
 *
 * Sweep options (compare/suite/sweep run on the parallel sweep engine):
 *   --jobs N         worker threads (default: hardware concurrency).
 *                    Reports are byte-identical for any N.
 *   --benches A,B,C  benchmark subset for sweep (default: all)
 *   --cores X,Y      core-model subset for sweep (default: all)
 *   --format F       sweep output: table | csv | json (default table)
 *   --out FILE       write the sweep report to FILE instead of stdout
 *
 * Exit status: 0 on success, 1 on usage errors.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "isa/trace_io.hh"
#include "sim/report.hh"
#include "sim/simulator.hh"
#include "sim/sweep.hh"

namespace {

using namespace icfp;

/** Parsed command line. */
struct Options
{
    std::string command;
    std::string bench = "mcf";
    std::string core = "icfp";
    uint64_t insts = kDefaultBenchInsts;
    std::optional<uint64_t> seed;
    std::optional<Cycle> l2Latency;
    std::optional<Cycle> memLatency;
    std::optional<unsigned> poisonBits;
    std::optional<std::string> trigger;
    bool blockingRally = false;
    bool noMtRally = false;
    std::optional<std::string> loadTrace;
    std::optional<std::string> saveTrace;
    unsigned disasmCount = 32;

    // Sweep-engine options.
    unsigned jobs = 0; ///< 0 = defaultSweepJobs()
    std::string benches = "all";
    std::string cores = "all";
    std::string format = "table";
    std::optional<std::string> out;
};

void
usage()
{
    std::fprintf(stderr,
                 "usage: icfp-sim "
                 "<list|cores|run|compare|suite|sweep|trace|disasm> "
                 "[options]\n"
                 "see the file comment in tools/icfp_sim_main.cc for the "
                 "option list\n");
}

bool
parseArgs(int argc, char **argv, Options *opt)
{
    if (argc < 2)
        return false;
    opt->command = argv[1];

    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n", arg.c_str());
                std::exit(1);
            }
            return argv[++i];
        };
        if (arg == "--bench") {
            opt->bench = next();
        } else if (arg == "--core") {
            opt->core = next();
        } else if (arg == "--insts") {
            opt->insts = std::strtoull(next(), nullptr, 0);
        } else if (arg == "--seed") {
            opt->seed = std::strtoull(next(), nullptr, 0);
        } else if (arg == "--l2-lat") {
            opt->l2Latency = std::strtoull(next(), nullptr, 0);
        } else if (arg == "--mem-lat") {
            opt->memLatency = std::strtoull(next(), nullptr, 0);
        } else if (arg == "--poison-bits") {
            opt->poisonBits =
                static_cast<unsigned>(std::strtoul(next(), nullptr, 0));
        } else if (arg == "--trigger") {
            opt->trigger = next();
        } else if (arg == "--blocking-rally") {
            opt->blockingRally = true;
        } else if (arg == "--no-mt-rally") {
            opt->noMtRally = true;
        } else if (arg == "--load-trace") {
            opt->loadTrace = next();
        } else if (arg == "--save-trace") {
            opt->saveTrace = next();
        } else if (arg == "--n") {
            opt->disasmCount =
                static_cast<unsigned>(std::strtoul(next(), nullptr, 0));
        } else if (arg == "--jobs") {
            opt->jobs =
                static_cast<unsigned>(std::strtoul(next(), nullptr, 0));
            if (opt->jobs == 0)
                opt->jobs = 1;
        } else if (arg == "--benches") {
            opt->benches = next();
        } else if (arg == "--cores") {
            opt->cores = next();
        } else if (arg == "--format") {
            opt->format = next();
        } else if (arg == "--out") {
            opt->out = next();
        } else {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            return false;
        }
    }
    return true;
}

/** Apply option overrides onto a default SimConfig. */
SimConfig
makeConfig(const Options &opt)
{
    SimConfig cfg;
    if (opt.l2Latency)
        cfg.mem.l2HitLatency = *opt.l2Latency;
    if (opt.memLatency)
        cfg.mem.memory.accessLatency = *opt.memLatency;
    if (opt.poisonBits) {
        cfg.icfp.poisonBits = *opt.poisonBits;
        cfg.mem.poisonBits = *opt.poisonBits;
    }
    if (opt.trigger) {
        AdvanceTrigger t = AdvanceTrigger::AnyDcache;
        if (*opt.trigger == "none")
            t = AdvanceTrigger::None;
        else if (*opt.trigger == "l2")
            t = AdvanceTrigger::L2Only;
        else if (*opt.trigger != "any")
            ICFP_FATAL("bad --trigger %s", opt.trigger->c_str());
        cfg.icfp.trigger = t;
        cfg.runahead.trigger = t;
    }
    if (opt.blockingRally)
        cfg.icfp.nonBlockingRally = false;
    if (opt.noMtRally)
        cfg.icfp.multithreadedRally = false;
    return cfg;
}

/** Build (or load) the golden trace per the options. */
Trace
makeTrace(const Options &opt)
{
    if (opt.loadTrace)
        return loadTraceFile(*opt.loadTrace);
    BenchmarkSpec spec = findBenchmark(opt.bench);
    if (opt.seed)
        spec.workload.seed = *opt.seed;
    Trace trace = makeBenchTrace(spec, opt.insts);
    if (opt.saveTrace)
        saveTraceFile(*opt.saveTrace, trace);
    return trace;
}

/** Split a comma-separated list. */
std::vector<std::string>
splitList(const std::string &list)
{
    std::vector<std::string> items;
    size_t start = 0;
    while (start <= list.size()) {
        const size_t comma = list.find(',', start);
        const size_t end = comma == std::string::npos ? list.size() : comma;
        if (end > start)
            items.push_back(list.substr(start, end - start));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return items;
}

/** Resolve --benches: "all" means the full suite. */
std::vector<std::string>
resolveBenches(const std::string &list)
{
    if (list == "all") {
        std::vector<std::string> names;
        for (const BenchmarkSpec &spec : spec2000Suite())
            names.push_back(spec.name);
        return names;
    }
    return splitList(list);
}

/** Resolve --cores: "all" means every registered model. */
std::vector<CoreKind>
resolveCores(const std::string &list)
{
    if (list == "all")
        return CoreRegistry::instance().kinds();
    std::vector<CoreKind> kinds;
    for (const std::string &name : splitList(list)) {
        const auto kind = parseCoreKind(name);
        if (!kind)
            ICFP_FATAL("unknown core '%s'", name.c_str());
        kinds.push_back(*kind);
    }
    return kinds;
}

/** One variant per core kind, all sharing the option-derived config. */
std::vector<SweepVariant>
coreVariants(const std::vector<CoreKind> &kinds, const SimConfig &cfg)
{
    std::vector<SweepVariant> variants;
    for (const CoreKind kind : kinds)
        variants.push_back({coreKindName(kind), kind, cfg});
    return variants;
}

/** The one list of sweep output formats (validation + dispatch). */
bool
validSweepFormat(const std::string &format)
{
    return format == "table" || format == "csv" || format == "json";
}

/** Emit a sweep report per --format/--out. @pre validSweepFormat() */
int
emitSweep(const Options &opt, const std::vector<SweepResult> &results)
{
    std::string text;
    if (opt.format == "csv") {
        text = sweepCsv(results);
    } else if (opt.format == "json") {
        text = sweepJson(results);
    } else if (opt.format == "table") {
        Table t("Sweep results (" + std::to_string(results.size()) +
                " runs)");
        t.setColumns({"bench/variant", "IPC", "D$ miss/KI", "L2 miss/KI",
                      "D$ MLP", "L2 MLP", "rally/KI"});
        for (const SweepResult &r : results) {
            t.addRow(r.bench + "/" + r.variant,
                     {r.result.ipc(),
                      r.result.missPerKi(r.result.mem.dcacheMisses),
                      r.result.missPerKi(r.result.mem.l2Misses),
                      r.result.dcacheMlp, r.result.l2Mlp,
                      r.result.rallyPerKi()},
                     2);
        }
        text = t.str();
    } else {
        ICFP_PANIC("unvalidated format '%s'", opt.format.c_str());
    }

    if (opt.out) {
        std::FILE *f = std::fopen(opt.out->c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "cannot open %s\n", opt.out->c_str());
            return 1;
        }
        std::fputs(text.c_str(), f);
        std::fclose(f);
        std::printf("wrote %zu runs to %s\n", results.size(),
                    opt.out->c_str());
    } else {
        std::fputs(text.c_str(), stdout);
    }
    return 0;
}

void
printResult(const RunResult &r)
{
    Table t("Run statistics: " + r.core);
    t.setColumns({"metric", "value"});
    t.addRow("instructions", {double(r.instructions)}, 0);
    t.addRow("cycles", {double(r.cycles)}, 0);
    t.addRow("IPC", {r.ipc()}, 3);
    t.addRow("D$ misses/KI", {r.missPerKi(r.mem.dcacheMisses)}, 2);
    t.addRow("L2 misses/KI", {r.missPerKi(r.mem.l2Misses)}, 2);
    t.addRow("D$ MLP", {r.dcacheMlp}, 2);
    t.addRow("L2 MLP", {r.l2Mlp}, 2);
    t.addRow("prefetch hits", {double(r.mem.prefetchHits)}, 0);
    t.addRow("cond mispredicts", {double(r.branch.condMispredicts)}, 0);
    t.addRow("advance entries", {double(r.advanceEntries)}, 0);
    t.addRow("advance insts", {double(r.advanceInsts)}, 0);
    t.addRow("sliced insts", {double(r.slicedInsts)}, 0);
    t.addRow("rally passes", {double(r.rallyPasses)}, 0);
    t.addRow("rally insts/KI", {r.rallyPerKi()}, 1);
    t.addRow("squashes", {double(r.squashes)}, 0);
    t.addRow("simple-RA entries", {double(r.simpleRaEntries)}, 0);
    t.addRow("SB excess hops/load",
             {r.sbChainLoads ? double(r.sbExcessHops) / double(r.sbChainLoads)
                             : 0.0},
             3);
    t.print();
}

int
cmdList()
{
    Table t("Benchmark analogs (paper Table 2 reference miss rates)");
    t.setColumns({"bench", "fp?", "paper D$/KI", "paper L2/KI"});
    for (const BenchmarkSpec &spec : spec2000Suite()) {
        t.addRow(spec.name,
                 {spec.isFp ? 1.0 : 0.0, spec.paperDcacheMissKi,
                  spec.paperL2MissKi},
                 0);
    }
    t.print();
    return 0;
}

int
cmdCores()
{
    std::printf("registered core models:\n");
    for (const CoreKind kind : CoreRegistry::instance().kinds())
        std::printf("  %s\n", coreKindName(kind));
    return 0;
}

int
cmdRun(const Options &opt)
{
    const auto kind = parseCoreKind(opt.core);
    if (!kind) {
        std::fprintf(stderr, "unknown core '%s'\n", opt.core.c_str());
        return 1;
    }
    const Trace trace = makeTrace(opt);
    const SimConfig cfg = makeConfig(opt);
    printResult(simulate(*kind, cfg, trace));
    return 0;
}

int
cmdCompare(const Options &opt)
{
    const SimConfig cfg = makeConfig(opt);
    const std::vector<SweepVariant> variants =
        coreVariants(CoreRegistry::instance().kinds(), cfg);

    SweepEngine engine(opt.jobs);
    std::vector<SweepResult> results;
    if (opt.loadTrace) {
        const Trace trace = makeTrace(opt);
        results = engine.runOnTrace(trace, variants, opt.bench);
    } else {
        SweepSpec spec;
        spec.benches = {opt.bench};
        spec.variants = variants;
        spec.insts = opt.insts;
        spec.seed = opt.seed;
        results = engine.run(spec);
        if (opt.saveTrace)
            saveTraceFile(*opt.saveTrace,
                          engine.trace(opt.bench, opt.insts, opt.seed));
    }

    Table t("All models on " + opt.bench);
    t.setColumns({"core", "IPC", "speedup %", "D$ MLP", "L2 MLP",
                  "rally/KI"});
    const RunResult &base = results.front().result; // in-order is first
    for (const SweepResult &sr : results) {
        const RunResult &r = sr.result;
        t.addRow(sr.variant,
                 {r.ipc(), percentSpeedup(base, r), r.dcacheMlp, r.l2Mlp,
                  r.rallyPerKi()},
                 2);
    }
    t.print();
    return 0;
}

/** Multi-bench commands generate per-bench traces; trace I/O options
 *  would be silently meaningless, so reject them loudly. */
bool
rejectTraceIo(const Options &opt, const char *command)
{
    if (opt.loadTrace || opt.saveTrace) {
        std::fprintf(stderr,
                     "%s: --load-trace/--save-trace are not supported "
                     "(runs one trace per benchmark); use 'run' or "
                     "'compare'\n",
                     command);
        return true;
    }
    return false;
}

int
cmdSuite(const Options &opt)
{
    if (rejectTraceIo(opt, "suite"))
        return 1;
    const auto kind = parseCoreKind(opt.core);
    if (!kind) {
        std::fprintf(stderr, "unknown core '%s'\n", opt.core.c_str());
        return 1;
    }
    SweepSpec spec;
    spec.benches = resolveBenches("all");
    spec.variants = {{opt.core, *kind, makeConfig(opt)}};
    spec.insts = opt.insts;
    spec.seed = opt.seed;

    SweepEngine engine(opt.jobs);
    const std::vector<SweepResult> results = engine.run(spec);

    Table t("Suite results: " + opt.core);
    t.setColumns({"bench", "IPC", "D$ miss/KI", "L2 miss/KI", "D$ MLP",
                  "L2 MLP"});
    for (const SweepResult &sr : results) {
        const RunResult &r = sr.result;
        t.addRow(sr.bench,
                 {r.ipc(), r.missPerKi(r.mem.dcacheMisses),
                  r.missPerKi(r.mem.l2Misses), r.dcacheMlp, r.l2Mlp},
                 2);
    }
    t.print();
    return 0;
}

int
cmdSweep(const Options &opt)
{
    if (rejectTraceIo(opt, "sweep"))
        return 1;
    // Validate the output sink before burning grid time.
    if (!validSweepFormat(opt.format)) {
        std::fprintf(stderr, "unknown format '%s'\n", opt.format.c_str());
        return 1;
    }
    SweepSpec spec;
    spec.benches = resolveBenches(opt.benches);
    // Validate names before touching the output file (findBenchmark is
    // fatal on a typo, and must not cost the user an existing report).
    for (const std::string &bench : spec.benches)
        findBenchmark(bench);
    spec.variants = coreVariants(resolveCores(opt.cores), makeConfig(opt));
    spec.insts = opt.insts;
    spec.seed = opt.seed;
    if (opt.out) {
        // Writability probe in append mode: never truncates existing
        // results; emitSweep rewrites the file after the grid completes.
        std::FILE *f = std::fopen(opt.out->c_str(), "a");
        if (!f) {
            std::fprintf(stderr, "cannot open %s\n", opt.out->c_str());
            return 1;
        }
        std::fclose(f);
    }

    SweepEngine engine(opt.jobs);
    return emitSweep(opt, engine.run(spec));
}

int
cmdTrace(const Options &opt)
{
    if (!opt.saveTrace) {
        std::fprintf(stderr, "trace: requires --save-trace FILE\n");
        return 1;
    }
    const Trace trace = makeTrace(opt);
    std::printf("saved %zu dynamic instructions to %s\n", trace.size(),
                opt.saveTrace->c_str());
    return 0;
}

int
cmdDisasm(const Options &opt)
{
    const Trace trace = makeTrace(opt);
    const size_t n =
        std::min<size_t>(opt.disasmCount, trace.size());
    for (size_t i = 0; i < n; ++i) {
        const DynInst &di = trace[i];
        std::printf("%6zu  pc=%-5u %-28s", i, di.pc,
                    disassemble(trace.program->code[di.pc]).c_str());
        if (di.isMem())
            std::printf("  ea=0x%llx", (unsigned long long)di.addr);
        if (di.hasDst())
            std::printf("  -> %llu", (unsigned long long)di.result);
        if (di.isControl())
            std::printf("  %s", di.taken ? "taken" : "not-taken");
        std::printf("\n");
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    if (!parseArgs(argc, argv, &opt)) {
        usage();
        return 1;
    }
    if (opt.command == "list")
        return cmdList();
    if (opt.command == "cores")
        return cmdCores();
    if (opt.command == "run")
        return cmdRun(opt);
    if (opt.command == "compare")
        return cmdCompare(opt);
    if (opt.command == "suite")
        return cmdSuite(opt);
    if (opt.command == "sweep")
        return cmdSweep(opt);
    if (opt.command == "trace")
        return cmdTrace(opt);
    if (opt.command == "disasm")
        return cmdDisasm(opt);
    usage();
    return 1;
}
