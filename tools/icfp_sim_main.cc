/**
 * @file
 * icfp-sim — command-line driver for the simulation library.
 *
 * Subcommands:
 *   list    [--suite S]          show one workload suite's benchmarks
 *   suites                       show the registered workload suites
 *   cores                        show the registered core models
 *   run     --bench B --core C   run one model, print full statistics
 *   compare --bench B            run every model on one benchmark
 *   suite   --core C [--suite S] run one model over a whole suite
 *   sweep   [--benches ...] [--cores ...]  run a (bench × core) grid
 *   merge   [--out F] SHARD...   stitch `sweep --shard` artifacts back
 *                                into the byte-identical unsharded report
 *   perf    [--quick] [--baseline F]  measure simulator throughput over
 *                                one suite's grid; emits BENCH_perf.json
 *   trace   --bench B --save-trace F   generate + save a golden trace
 *   disasm  --bench B [--n N]    print the first N dynamic instructions
 *   version                      sim + registry identity as JSON (the
 *                                service handshake / result-cache blob)
 *   serve   --socket PATH        run the simulation service daemon
 *   submit  --socket PATH [--wait]    submit a sweep job to a daemon
 *   status  --socket PATH [--job N] [--json]   query one job's state,
 *                                or (without --job) the daemon itself:
 *                                queue occupancy and per-peer health
 *   result  --socket PATH --job N     fetch one job's artifact
 *   cancel  --socket PATH --job N     cancel a queued or running job
 *   ping    --socket PATH        handshake + round-trip latency check
 *   metrics --socket PATH [--json]    scrape the daemon's metrics
 *                                registry (Prometheus text exposition,
 *                                or the flat JSON form with --json); on
 *                                a federation coordinator the scrape is
 *                                the fleet rollup — every healthy
 *                                peer's metrics merged in with a
 *                                peer="<spec>" label
 *
 * Common options:
 *   --insts N        dynamic instruction budget (default 200000)
 *   --seed S         workload RNG seed override
 *   --suite S        workload suite (list/compare/suite/sweep/perf;
 *                    default spec2000; see `icfp-sim suites`)
 *   --l2-lat N       L2 hit latency in cycles (Figure 6 sweeps)
 *   --mem-lat N      memory latency in cycles
 *   --poison-bits N  iCFP poison-vector width (1..16)
 *   --trigger T      advance trigger: none | l2 | any
 *   --blocking-rally use single blocking rallies (SLTP-style iCFP)
 *   --no-mt-rally    disable multithreaded rally+tail execution
 *   --load-trace F   replay a saved trace instead of generating one
 *   --save-trace F   also save the generated trace
 *
 * Sweep options (compare/suite/sweep run on the parallel sweep engine):
 *   --jobs N         worker threads (default: hardware concurrency).
 *                    Reports are byte-identical for any N.
 *   --benches A,B,C  benchmark subset for sweep (default: all)
 *   --cores X,Y      core-model subset for sweep (default: all)
 *   --format F       sweep output: table | csv | json (default table)
 *   --out FILE       write the sweep report to FILE instead of stdout
 *   --shard i/N      run only shard i of N (1-based); emits a shard
 *                    artifact (csv/json only) for `icfp-sim merge`
 *   --trace-dir DIR  persistent golden-trace store (overrides the
 *                    ICFP_TRACE_DIR environment variable)
 *
 * Service options (see src/service/server.hh):
 *   --socket PATH    Unix-domain socket the daemon serves / clients use
 *   --queue-depth K  serve: max queued+running jobs before `busy` (8)
 *   --jobs N         serve: sweep-engine worker threads
 *   --cache-dir DIR  serve: persistent result-cache directory (the
 *                    crash-safe disk tier; warm repeats survive a
 *                    daemon restart)
 *   --deadline-sec N serve: default per-job wall-clock limit;
 *                    submit: this job's limit (overrides the daemon
 *                    default; 0 = unbounded)
 *   --wait           submit: block until the job finishes and emit the
 *                    artifact (to --out or stdout)
 *   --job N          status/result/cancel: the job id
 *   --timeout SEC    client verbs: per-frame read deadline (0 = wait
 *                    forever; for submit --wait it must exceed the
 *                    expected job time)
 *   --retries N      client verbs: connection retries with exponential
 *                    backoff (daemon restarting / not up yet)
 *   --json           status: dump the raw status frame (machine-
 *                    readable, stable field names)
 *                    metrics: the flat JSON exposition instead of the
 *                    Prometheus text format
 *   --job-trace-dir DIR  serve: publish a Chrome-trace JSON of every
 *                    traced job's phase spans (queue wait, cache probe,
 *                    trace gen, replay, report emit / federation) as
 *                    DIR/job-<id>.trace.json — open in chrome://tracing
 *                    or Perfetto. Observability only: artifacts stay
 *                    byte-identical with tracing on.
 *   --trace          submit: request a per-job trace (errors loudly if
 *                    the daemon has no --job-trace-dir)
 *   submit also honors --suite/--benches/--cores/--insts/--seed and
 *   --format csv|json (default csv); the fetched artifact is
 *   byte-identical to `icfp-sim sweep` with the same options.
 *
 * Federation options (serve only; see src/service/federation/):
 *   --listen-tcp H:P daemon also listens on TCP (port 0 = ephemeral,
 *                    the bound port is logged at startup)
 *   --peers A,B,...  coordinator mode: slice whole-grid submits across
 *                    these peer daemons (host:port or socket paths) and
 *                    merge the shard artifacts byte-identically
 *   --slice-deadline-sec N   straggler deadline per dispatched slice
 *                    (0 = none); an expired slice is re-dispatched
 *
 * Perf options (see sim/perf_harness.hh):
 *   --quick          trimmed grid / budget for CI smoke runs
 *   --reps N         timed repetitions per case (median-of-N, default 3)
 *   --warmup N       untimed repetitions per case (default 1)
 *   --baseline FILE  prior BENCH_perf.json; the emitted artifact then
 *                    records both numbers and the speedup ratio
 *
 * Exit status: 0 on success, 1 on usage errors.
 */

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.hh"
#include "isa/trace_io.hh"
#include "service/client.hh"
#include "service/server.hh"
#include "sim/merge.hh"
#include "sim/perf_harness.hh"
#include "sim/report.hh"
#include "sim/simulator.hh"
#include "sim/sweep.hh"
#include "sim/trace_store.hh"
#include "sim/version_info.hh"
#include "workloads/nonspec_suites.hh"
#include "workloads/suite_registry.hh"

namespace {

using namespace icfp;

/** Parsed command line. */
struct Options
{
    std::string command;
    std::string bench = "mcf";
    bool benchSet = false; ///< --bench given explicitly
    std::string core = "icfp";
    std::string suite = kDefaultSuiteName;
    bool suiteSet = false; ///< --suite given explicitly
    uint64_t insts = kDefaultBenchInsts;
    bool instsSet = false; ///< --insts given explicitly
    std::optional<uint64_t> seed;
    std::optional<Cycle> l2Latency;
    std::optional<Cycle> memLatency;
    std::optional<unsigned> poisonBits;
    std::optional<std::string> trigger;
    bool blockingRally = false;
    bool noMtRally = false;
    std::optional<std::string> loadTrace;
    std::optional<std::string> saveTrace;
    unsigned disasmCount = 32;

    // Sweep-engine options.
    unsigned jobs = 0; ///< 0 = defaultSweepJobs()
    std::string benches = "all";
    std::string cores = "all";
    std::string format = "table";
    bool formatSet = false; ///< --format given explicitly
    std::optional<std::string> out;
    std::optional<ShardSpec> shard;
    std::optional<std::string> traceDir;

    // Service options.
    std::string socket;
    size_t queueDepth = 8;
    bool queueDepthSet = false;
    bool wait = false;
    std::optional<uint64_t> jobId;
    std::optional<std::string> cacheDir;
    uint64_t deadlineSec = 0;
    bool deadlineSecSet = false;
    unsigned timeoutSec = 0;
    bool timeoutSet = false;
    unsigned retries = 0;
    bool retriesSet = false;

    // Federation options (serve only).
    std::string peers;     ///< comma list of peer endpoints
    std::string listenTcp; ///< extra TCP listener, "host:port"
    uint64_t sliceDeadlineSec = 0;
    bool sliceDeadlineSet = false;
    bool statusJson = false; ///< status/metrics --json: machine form

    // Observability options.
    std::optional<std::string> jobTraceDir; ///< serve --job-trace-dir
    bool trace = false;                     ///< submit --trace

    // Perf options.
    bool quick = false;
    unsigned perfReps = 3;
    bool perfRepsSet = false;
    unsigned perfWarmup = 1;
    bool perfWarmupSet = false;
    std::optional<std::string> baseline;

    std::vector<std::string> inputs; ///< positional args (merge shards)
};

void
usage()
{
    std::fprintf(stderr,
                 "usage: icfp-sim "
                 "<list|suites|cores|run|compare|suite|sweep|merge|perf|"
                 "trace|disasm|version|serve|submit|status|result|cancel|"
                 "ping|metrics> [options]\n"
                 "see the file comment in tools/icfp_sim_main.cc for the "
                 "option list\n");
}

bool
parseArgs(int argc, char **argv, Options *opt)
{
    if (argc < 2)
        return false;
    opt->command = argv[1];

    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n", arg.c_str());
                std::exit(1);
            }
            return argv[++i];
        };
        if (arg == "--bench") {
            opt->bench = next();
            opt->benchSet = true;
        } else if (arg == "--core") {
            opt->core = next();
        } else if (arg == "--suite") {
            opt->suite = next();
            opt->suiteSet = true;
        } else if (arg == "--insts") {
            opt->insts = std::strtoull(next(), nullptr, 0);
            opt->instsSet = true;
        } else if (arg == "--seed") {
            opt->seed = std::strtoull(next(), nullptr, 0);
        } else if (arg == "--l2-lat") {
            opt->l2Latency = std::strtoull(next(), nullptr, 0);
        } else if (arg == "--mem-lat") {
            opt->memLatency = std::strtoull(next(), nullptr, 0);
        } else if (arg == "--poison-bits") {
            opt->poisonBits =
                static_cast<unsigned>(std::strtoul(next(), nullptr, 0));
        } else if (arg == "--trigger") {
            opt->trigger = next();
        } else if (arg == "--blocking-rally") {
            opt->blockingRally = true;
        } else if (arg == "--no-mt-rally") {
            opt->noMtRally = true;
        } else if (arg == "--load-trace") {
            opt->loadTrace = next();
        } else if (arg == "--save-trace") {
            opt->saveTrace = next();
        } else if (arg == "--n") {
            opt->disasmCount =
                static_cast<unsigned>(std::strtoul(next(), nullptr, 0));
        } else if (arg == "--jobs") {
            opt->jobs =
                static_cast<unsigned>(std::strtoul(next(), nullptr, 0));
            if (opt->jobs == 0)
                opt->jobs = 1;
        } else if (arg == "--benches") {
            opt->benches = next();
        } else if (arg == "--cores") {
            opt->cores = next();
        } else if (arg == "--format") {
            opt->format = next();
            opt->formatSet = true;
        } else if (arg == "--out") {
            opt->out = next();
        } else if (arg == "--shard") {
            const char *text = next();
            opt->shard = parseShardSpec(text);
            if (!opt->shard) {
                std::fprintf(stderr,
                             "bad --shard '%s' (want i/N with "
                             "1 <= i <= N)\n",
                             text);
                return false;
            }
        } else if (arg == "--socket") {
            opt->socket = next();
        } else if (arg == "--queue-depth") {
            opt->queueDepth =
                static_cast<size_t>(std::strtoull(next(), nullptr, 0));
            if (opt->queueDepth == 0) {
                std::fprintf(stderr,
                             "--queue-depth must be at least 1\n");
                return false;
            }
            opt->queueDepthSet = true;
        } else if (arg == "--wait") {
            opt->wait = true;
        } else if (arg == "--job") {
            opt->jobId = std::strtoull(next(), nullptr, 0);
        } else if (arg == "--cache-dir") {
            opt->cacheDir = next();
            if (opt->cacheDir->empty()) {
                // Same guard as --trace-dir: an empty dir (unset shell
                // variable) would scatter .res files into the CWD.
                std::fprintf(stderr,
                             "--cache-dir requires a non-empty "
                             "directory\n");
                return false;
            }
        } else if (arg == "--deadline-sec") {
            opt->deadlineSec = std::strtoull(next(), nullptr, 0);
            opt->deadlineSecSet = true;
        } else if (arg == "--timeout") {
            opt->timeoutSec =
                static_cast<unsigned>(std::strtoul(next(), nullptr, 0));
            opt->timeoutSet = true;
        } else if (arg == "--peers") {
            opt->peers = next();
            if (opt->peers.empty()) {
                std::fprintf(stderr,
                             "--peers requires a non-empty endpoint "
                             "list\n");
                return false;
            }
        } else if (arg == "--listen-tcp") {
            opt->listenTcp = next();
            if (opt->listenTcp.empty()) {
                std::fprintf(stderr,
                             "--listen-tcp requires host:port\n");
                return false;
            }
        } else if (arg == "--slice-deadline-sec") {
            opt->sliceDeadlineSec = std::strtoull(next(), nullptr, 0);
            opt->sliceDeadlineSet = true;
        } else if (arg == "--json") {
            opt->statusJson = true;
        } else if (arg == "--job-trace-dir") {
            opt->jobTraceDir = next();
            if (opt->jobTraceDir->empty()) {
                // Same guard as --trace-dir/--cache-dir: an empty dir
                // would scatter trace files into the CWD.
                std::fprintf(stderr,
                             "--job-trace-dir requires a non-empty "
                             "directory\n");
                return false;
            }
        } else if (arg == "--trace") {
            opt->trace = true;
        } else if (arg == "--retries") {
            opt->retries =
                static_cast<unsigned>(std::strtoul(next(), nullptr, 0));
            opt->retriesSet = true;
        } else if (arg == "--quick") {
            opt->quick = true;
        } else if (arg == "--reps") {
            opt->perfReps =
                static_cast<unsigned>(std::strtoul(next(), nullptr, 0));
            if (opt->perfReps == 0)
                opt->perfReps = 1;
            opt->perfRepsSet = true;
        } else if (arg == "--warmup") {
            opt->perfWarmup =
                static_cast<unsigned>(std::strtoul(next(), nullptr, 0));
            opt->perfWarmupSet = true;
        } else if (arg == "--baseline") {
            opt->baseline = next();
        } else if (arg == "--trace-dir") {
            opt->traceDir = next();
            if (opt->traceDir->empty()) {
                // An empty dir (unset shell variable) would root the
                // store at "" and scatter .trc files into the CWD.
                std::fprintf(stderr,
                             "--trace-dir requires a non-empty "
                             "directory\n");
                return false;
            }
        } else if (arg.rfind("--", 0) != 0) {
            opt->inputs.push_back(arg);
        } else {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            return false;
        }
    }
    return true;
}

/**
 * The config-shaping options as a canonical string for the sweep grid
 * fingerprint: makeConfig() bakes these into every variant without
 * renaming it, so two shards run with different overrides would
 * otherwise look mergeable.
 */
std::string
configIdentity(const Options &opt)
{
    std::string id = "l2=";
    id += opt.l2Latency ? std::to_string(*opt.l2Latency) : "-";
    id += " mem=";
    id += opt.memLatency ? std::to_string(*opt.memLatency) : "-";
    id += " pb=";
    id += opt.poisonBits ? std::to_string(*opt.poisonBits) : "-";
    id += " trig=";
    id += opt.trigger ? *opt.trigger : "-";
    id += opt.blockingRally ? " blocking-rally" : "";
    id += opt.noMtRally ? " no-mt-rally" : "";
    return id;
}

/** Apply option overrides onto a default SimConfig. */
SimConfig
makeConfig(const Options &opt)
{
    SimConfig cfg;
    if (opt.l2Latency)
        cfg.mem.l2HitLatency = *opt.l2Latency;
    if (opt.memLatency)
        cfg.mem.memory.accessLatency = *opt.memLatency;
    if (opt.poisonBits) {
        cfg.icfp.poisonBits = *opt.poisonBits;
        cfg.mem.poisonBits = *opt.poisonBits;
    }
    if (opt.trigger) {
        AdvanceTrigger t = AdvanceTrigger::AnyDcache;
        if (*opt.trigger == "none")
            t = AdvanceTrigger::None;
        else if (*opt.trigger == "l2")
            t = AdvanceTrigger::L2Only;
        else if (*opt.trigger != "any")
            ICFP_FATAL("bad --trigger %s", opt.trigger->c_str());
        cfg.icfp.trigger = t;
        cfg.runahead.trigger = t;
    }
    if (opt.blockingRally)
        cfg.icfp.nonBlockingRally = false;
    if (opt.noMtRally)
        cfg.icfp.multithreadedRally = false;
    return cfg;
}

/** Build (or load) the golden trace per the options. */
Trace
makeTrace(const Options &opt)
{
    if (opt.loadTrace)
        return loadTraceFile(*opt.loadTrace);
    BenchmarkSpec spec = findBenchmark(opt.bench);
    if (opt.seed)
        spec.workload.seed = *opt.seed;
    Trace trace = makeBenchTrace(spec, opt.insts);
    if (opt.saveTrace)
        saveTraceFile(*opt.saveTrace, trace);
    return trace;
}

/** Resolve --benches: "all" means the whole --suite. */
std::vector<std::string>
resolveBenches(const std::string &list, const std::string &suite)
{
    if (list == "all") {
        std::vector<std::string> names;
        for (const BenchmarkSpec &spec : findSuite(suite))
            names.push_back(spec.name);
        return names;
    }
    return splitCommaList(list);
}

/** Resolve --cores: "all" means every registered model. */
std::vector<CoreKind>
resolveCores(const std::string &list)
{
    if (list == "all")
        return CoreRegistry::instance().kinds();
    std::vector<CoreKind> kinds;
    for (const std::string &name : splitCommaList(list)) {
        const auto kind = parseCoreKind(name);
        if (!kind)
            ICFP_FATAL("unknown core '%s'", name.c_str());
        kinds.push_back(*kind);
    }
    return kinds;
}

/** One variant per core kind, all sharing the option-derived config. */
std::vector<SweepVariant>
coreVariants(const std::vector<CoreKind> &kinds, const SimConfig &cfg)
{
    std::vector<SweepVariant> variants;
    for (const CoreKind kind : kinds)
        variants.push_back({coreKindName(kind), kind, cfg});
    return variants;
}

/** The one list of sweep output formats (validation + dispatch). */
bool
validSweepFormat(const std::string &format)
{
    return format == "table" || format == "csv" || format == "json";
}

/** Apply --trace-dir (overriding the ICFP_TRACE_DIR directory; the
 *  ICFP_TRACE_DIR_MAX_MB cap still applies). */
void
applyTraceDir(SweepEngine &engine, const Options &opt)
{
    if (opt.traceDir) {
        engine.setTraceStore(std::make_shared<TraceStore>(
            *opt.traceDir, TraceStore::maxBytesFromEnv()));
    }
}

/** One greppable stderr line of trace-store traffic (the observable
 *  hit/miss counter: a warm store shows misses=0 generations=0). */
void
printStoreStats(const SweepEngine &engine)
{
    const TraceStore *store = engine.traceStore();
    if (!store)
        return;
    const TraceStore::Stats s = store->stats();
    std::fprintf(stderr,
                 "icfp-sim: trace store hits=%llu misses=%llu "
                 "writes=%llu corrupt=%llu evictions=%llu "
                 "generations=%llu dir=%s\n",
                 (unsigned long long)s.hits, (unsigned long long)s.misses,
                 (unsigned long long)s.writes,
                 (unsigned long long)s.corrupt,
                 (unsigned long long)s.evictions,
                 (unsigned long long)engine.traceGenerations(),
                 store->dir().c_str());
}

/**
 * Emit a sweep report per --format/--out. With --shard, emits a shard
 * artifact carrying (shard, @p grid_rows) metadata for `icfp-sim merge`.
 * @pre validSweepFormat()
 */
int
emitSweep(const Options &opt, const std::vector<SweepResult> &results,
          uint64_t grid_rows, uint64_t grid_fp)
{
    std::string text;
    if (opt.shard && opt.format == "csv") {
        text = shardCsv(results, *opt.shard, grid_rows, grid_fp);
    } else if (opt.shard && opt.format == "json") {
        text = shardJson(results, *opt.shard, grid_rows, grid_fp);
    } else if (opt.format == "csv") {
        text = sweepCsv(results);
    } else if (opt.format == "json") {
        text = sweepJson(results);
    } else if (opt.format == "table") {
        Table t("Sweep results (" + std::to_string(results.size()) +
                " runs)");
        t.setColumns({"bench/variant", "IPC", "D$ miss/KI", "L2 miss/KI",
                      "D$ MLP", "L2 MLP", "rally/KI"});
        for (const SweepResult &r : results) {
            t.addRow(r.bench + "/" + r.variant,
                     {r.result.ipc(),
                      r.result.missPerKi(r.result.mem.dcacheMisses),
                      r.result.missPerKi(r.result.mem.l2Misses),
                      r.result.dcacheMlp, r.result.l2Mlp,
                      r.result.rallyPerKi()},
                     2);
        }
        text = t.str();
    } else {
        ICFP_PANIC("unvalidated format '%s'", opt.format.c_str());
    }

    if (opt.out) {
        std::FILE *f = std::fopen(opt.out->c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "cannot open %s\n", opt.out->c_str());
            return 1;
        }
        std::fputs(text.c_str(), f);
        std::fclose(f);
        std::printf("wrote %zu runs to %s\n", results.size(),
                    opt.out->c_str());
    } else {
        std::fputs(text.c_str(), stdout);
    }
    return 0;
}

void
printResult(const RunResult &r)
{
    Table t("Run statistics: " + r.core);
    t.setColumns({"metric", "value"});
    t.addRow("instructions", {double(r.instructions)}, 0);
    t.addRow("cycles", {double(r.cycles)}, 0);
    t.addRow("IPC", {r.ipc()}, 3);
    t.addRow("D$ misses/KI", {r.missPerKi(r.mem.dcacheMisses)}, 2);
    t.addRow("L2 misses/KI", {r.missPerKi(r.mem.l2Misses)}, 2);
    t.addRow("D$ MLP", {r.dcacheMlp}, 2);
    t.addRow("L2 MLP", {r.l2Mlp}, 2);
    t.addRow("prefetch hits", {double(r.mem.prefetchHits)}, 0);
    t.addRow("cond mispredicts", {double(r.branch.condMispredicts)}, 0);
    t.addRow("advance entries", {double(r.advanceEntries)}, 0);
    t.addRow("advance insts", {double(r.advanceInsts)}, 0);
    t.addRow("sliced insts", {double(r.slicedInsts)}, 0);
    t.addRow("rally passes", {double(r.rallyPasses)}, 0);
    t.addRow("rally insts/KI", {r.rallyPerKi()}, 1);
    t.addRow("squashes", {double(r.squashes)}, 0);
    t.addRow("simple-RA entries", {double(r.simpleRaEntries)}, 0);
    t.addRow("SB excess hops/load",
             {r.sbChainLoads ? double(r.sbExcessHops) / double(r.sbChainLoads)
                             : 0.0},
             3);
    t.print();
}

int
cmdList(const Options &opt)
{
    Table t("Benchmark analogs (paper Table 2 reference miss rates)");
    t.setColumns({"bench", "fp?", "paper D$/KI", "paper L2/KI"});
    for (const BenchmarkSpec &spec : findSuite(opt.suite)) {
        t.addRow(spec.name,
                 {spec.isFp ? 1.0 : 0.0, spec.paperDcacheMissKi,
                  spec.paperL2MissKi},
                 0);
    }
    t.print();
    return 0;
}

int
cmdSuites()
{
    std::printf("registered workload suites:\n");
    for (const std::string &name : suiteNames()) {
        const SuiteRegistry &registry = SuiteRegistry::instance();
        std::printf("  %-10s %2zu benches  %s\n", name.c_str(),
                    registry.suite(name).size(),
                    registry.description(name).c_str());
    }
    return 0;
}

int
cmdCores()
{
    std::printf("registered core models:\n");
    for (const CoreKind kind : CoreRegistry::instance().kinds())
        std::printf("  %s\n", coreKindName(kind));
    return 0;
}

int
cmdRun(const Options &opt)
{
    const auto kind = parseCoreKind(opt.core);
    if (!kind) {
        std::fprintf(stderr, "unknown core '%s'\n", opt.core.c_str());
        return 1;
    }
    const Trace trace = makeTrace(opt);
    const SimConfig cfg = makeConfig(opt);
    printResult(simulate(*kind, cfg, trace));
    return 0;
}

int
cmdCompare(const Options &original)
{
    Options opt = original;
    // --suite selects the benchmark namespace: without an explicit
    // --bench, compare the models on the suite's first benchmark.
    if (opt.suiteSet && !opt.benchSet)
        opt.bench = findSuite(opt.suite).front().name;
    const SimConfig cfg = makeConfig(opt);
    const std::vector<SweepVariant> variants =
        coreVariants(CoreRegistry::instance().kinds(), cfg);

    SweepEngine engine(opt.jobs);
    applyTraceDir(engine, opt);
    std::vector<SweepResult> results;
    if (opt.loadTrace) {
        const Trace trace = makeTrace(opt);
        results = engine.runOnTrace(trace, variants, opt.bench);
    } else {
        SweepSpec spec;
        spec.benches = {opt.bench};
        spec.variants = variants;
        spec.insts = opt.insts;
        spec.seed = opt.seed;
        results = engine.run(spec);
        if (opt.saveTrace)
            saveTraceFile(*opt.saveTrace,
                          engine.trace(opt.bench, opt.insts, opt.seed));
        printStoreStats(engine);
    }

    Table t("All models on " + opt.bench);
    t.setColumns({"core", "IPC", "speedup %", "D$ MLP", "L2 MLP",
                  "rally/KI"});
    const RunResult &base = results.front().result; // in-order is first
    for (const SweepResult &sr : results) {
        const RunResult &r = sr.result;
        t.addRow(sr.variant,
                 {r.ipc(), percentSpeedup(base, r), r.dcacheMlp, r.l2Mlp,
                  r.rallyPerKi()},
                 2);
    }
    t.print();
    return 0;
}

/** Multi-bench commands generate per-bench traces; trace I/O options
 *  would be silently meaningless, so reject them loudly. */
bool
rejectTraceIo(const Options &opt, const char *command)
{
    if (opt.loadTrace || opt.saveTrace) {
        std::fprintf(stderr,
                     "%s: --load-trace/--save-trace are not supported "
                     "(runs one trace per benchmark); use 'run' or "
                     "'compare'\n",
                     command);
        return true;
    }
    return false;
}

int
cmdSuite(const Options &opt)
{
    if (rejectTraceIo(opt, "suite"))
        return 1;
    const auto kind = parseCoreKind(opt.core);
    if (!kind) {
        std::fprintf(stderr, "unknown core '%s'\n", opt.core.c_str());
        return 1;
    }
    SweepSpec spec;
    spec.benches = resolveBenches("all", opt.suite);
    spec.variants = {{opt.core, *kind, makeConfig(opt)}};
    spec.insts = opt.insts;
    spec.seed = opt.seed;

    SweepEngine engine(opt.jobs);
    applyTraceDir(engine, opt);
    const std::vector<SweepResult> results = engine.run(spec);
    printStoreStats(engine);

    Table t("Suite results: " + opt.core);
    t.setColumns({"bench", "IPC", "D$ miss/KI", "L2 miss/KI", "D$ MLP",
                  "L2 MLP"});
    for (const SweepResult &sr : results) {
        const RunResult &r = sr.result;
        t.addRow(sr.bench,
                 {r.ipc(), r.missPerKi(r.mem.dcacheMisses),
                  r.missPerKi(r.mem.l2Misses), r.dcacheMlp, r.l2Mlp},
                 2);
    }
    t.print();
    return 0;
}

int
cmdSweep(const Options &opt)
{
    if (rejectTraceIo(opt, "sweep"))
        return 1;
    // Validate the output sink before burning grid time.
    if (!validSweepFormat(opt.format)) {
        std::fprintf(stderr, "unknown format '%s'\n", opt.format.c_str());
        return 1;
    }
    if (opt.shard && opt.format == "table") {
        std::fprintf(stderr,
                     "--shard emits a mergeable artifact; use "
                     "--format csv or json\n");
        return 1;
    }
    SweepSpec spec;
    spec.benches = resolveBenches(opt.benches, opt.suite);
    // Validate names before touching the output file (findBenchmark is
    // fatal on a typo, and must not cost the user an existing report).
    for (const std::string &bench : spec.benches)
        findBenchmark(bench);
    spec.variants = coreVariants(resolveCores(opt.cores), makeConfig(opt));
    spec.insts = opt.insts;
    spec.seed = opt.seed;
    if (opt.out) {
        // Writability probe in append mode: never truncates existing
        // results; emitSweep rewrites the file after the grid completes.
        std::FILE *f = std::fopen(opt.out->c_str(), "a");
        if (!f) {
            std::fprintf(stderr, "cannot open %s\n", opt.out->c_str());
            return 1;
        }
        std::fclose(f);
    }

    const std::vector<SweepJob> grid = expandGrid(spec);
    const std::vector<SweepJob> jobs =
        opt.shard ? shardJobs(grid, *opt.shard) : grid;

    SweepEngine engine(opt.jobs);
    applyTraceDir(engine, opt);
    const std::vector<SweepResult> results =
        engine.run(jobs, spec.insts, spec.seed);
    printStoreStats(engine);
    return emitSweep(opt, results, grid.size(),
                     gridFingerprint(grid, spec.insts, spec.seed,
                                     configIdentity(opt)));
}

int
cmdMerge(const Options &opt)
{
    if (opt.inputs.empty()) {
        std::fprintf(stderr,
                     "merge: give the shard artifact files to merge\n");
        return 1;
    }
    if (opt.formatSet) {
        // Never pretend to honor a format we don't control: the merged
        // report's format is whatever the shard artifacts carry.
        std::fprintf(stderr,
                     "merge: the output format is inferred from the "
                     "artifacts; --format is not accepted\n");
        return 1;
    }
    if (opt.instsSet || opt.benches != "all" || opt.cores != "all" ||
        opt.seed || opt.jobs != 0) {
        // Same policy as --format: merge only stitches artifacts, so a
        // sweep-shaping option here would be silently meaningless.
        std::fprintf(stderr,
                     "merge: --insts/--benches/--cores/--seed/--jobs "
                     "shape a sweep, not a merge; rerun the shards "
                     "instead\n");
        return 1;
    }
    std::string text;
    try {
        text = mergeShardFiles(opt.inputs);
    } catch (const MergeError &e) {
        std::fprintf(stderr, "merge: %s\n", e.what());
        return 1;
    }
    if (opt.out) {
        std::FILE *f = std::fopen(opt.out->c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "cannot open %s\n", opt.out->c_str());
            return 1;
        }
        std::fputs(text.c_str(), f);
        std::fclose(f);
    } else {
        std::fputs(text.c_str(), stdout);
    }
    return 0;
}

int
cmdPerf(const Options &opt)
{
    PerfOptions perf;
    perf.suite = opt.suite;
    perf.quick = opt.quick;
    perf.reps = opt.perfRepsSet ? opt.perfReps : (opt.quick ? 1 : 3);
    perf.warmup = opt.perfWarmupSet ? opt.perfWarmup
                                    : (opt.quick ? 0 : 1);
    if (opt.instsSet)
        perf.insts = opt.insts;
    else
        perf.insts = opt.quick ? 20000 : 100000;
    if (opt.benches != "all")
        perf.benches = splitCommaList(opt.benches);

    std::optional<PerfBaseline> baseline;
    if (opt.baseline) {
        baseline = readPerfBaseline(*opt.baseline);
        if (!baseline)
            return 1; // a requested comparison that can't happen is an error
        // Refuse a cross-suite comparison: a "speedup" of nonspec
        // pointer-chasing over the fig5 SPEC grid is meaningless, and
        // would be baked into the emitted artifact as if measured.
        // (quick vs full of the SAME suite is allowed — that is a
        // budget difference, the classic before/after workflow.)
        const std::string current =
            perfGridSuitePart(perfGridName(opt.suite, opt.quick));
        if (!baseline->grid.empty() &&
            perfGridSuitePart(baseline->grid) != current) {
            std::fprintf(stderr,
                         "perf: baseline %s measured grid '%s' but this "
                         "run is '%s'; rerun with a matching --suite\n",
                         opt.baseline->c_str(), baseline->grid.c_str(),
                         current.c_str());
            return 1;
        }
    }

    const PerfReport report = runPerfHarness(perf);
    const std::string json = perfReportJson(report, baseline);

    const std::string out_path = opt.out ? *opt.out : "BENCH_perf.json";
    std::FILE *f = std::fopen(out_path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
        return 1;
    }
    std::fputs(json.c_str(), f);
    std::fclose(f);

    // Human-readable summary on stdout; the artifact holds the details.
    Table t("Simulator throughput (" + report.grid + ", " +
            std::to_string(report.instsPerBench) + " insts/bench, median of " +
            std::to_string(report.reps) + ")");
    t.setColumns({"stage", "Minsts/s"});
    t.addRow("trace gen", {report.genInstsPerSec / 1e6}, 2);
    for (const PerfSchemeStat &st : report.schemes)
        t.addRow("replay " + st.scheme, {st.instsPerSec / 1e6}, 2);
    t.addRow("replay overall", {report.replayInstsPerSec / 1e6}, 2);
    t.print();
    if (baseline && baseline->replayInstsPerSec > 0.0) {
        std::printf("replay speedup vs baseline: %.2fx\n",
                    report.replayInstsPerSec / baseline->replayInstsPerSec);
    }
    std::printf("wrote %s\n", out_path.c_str());
    return 0;
}

int
cmdTrace(const Options &opt)
{
    if (!opt.saveTrace) {
        std::fprintf(stderr, "trace: requires --save-trace FILE\n");
        return 1;
    }
    const Trace trace = makeTrace(opt);
    std::printf("saved %zu dynamic instructions to %s\n", trace.size(),
                opt.saveTrace->c_str());
    return 0;
}

int
cmdVersion()
{
    std::fputs(versionJson().c_str(), stdout);
    return 0;
}

/** SIGTERM/SIGINT land here; the serve loop polls the flag. */
std::atomic<bool> g_drainRequested{false};

void
onDrainSignal(int)
{
    g_drainRequested.store(true);
}

int
cmdServe(const Options &opt)
{
    service::ServerOptions sopt;
    sopt.socketPath = opt.socket;
    sopt.jobs = opt.jobs;
    sopt.queueDepth = opt.queueDepth;
    sopt.traceDir = opt.traceDir;
    sopt.cacheDir = opt.cacheDir;
    sopt.deadlineSec = opt.deadlineSec;
    sopt.listenTcp = opt.listenTcp;
    sopt.peers = splitCommaList(opt.peers);
    sopt.sliceDeadlineSec = opt.sliceDeadlineSec;
    sopt.jobTraceDir = opt.jobTraceDir;
    service::Server server(std::move(sopt));

    // Handlers first: a supervisor's SIGTERM racing startup must drain,
    // not kill the process with the socket file left behind.
    struct sigaction sa{};
    sa.sa_handler = onDrainSignal;
    sigaction(SIGTERM, &sa, nullptr);
    sigaction(SIGINT, &sa, nullptr);

    try {
        server.start();
    } catch (const std::exception &e) {
        std::fprintf(stderr, "serve: %s\n", e.what());
        return 1;
    }

    while (!g_drainRequested.load())
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    server.requestDrain();
    server.join();
    return 0;
}

/** The --timeout/--retries pair every client verb passes through. */
service::ClientOptions
clientOptions(const Options &opt)
{
    service::ClientOptions copt;
    copt.timeoutSec = opt.timeoutSec;
    copt.retries = opt.retries;
    return copt;
}

/** Emit a fetched artifact payload per --out (file) or to stdout. */
int
emitPayload(const Options &opt, const std::string &payload)
{
    if (opt.out) {
        std::FILE *f = std::fopen(opt.out->c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "cannot open %s\n", opt.out->c_str());
            return 1;
        }
        std::fputs(payload.c_str(), f);
        std::fclose(f);
    } else {
        std::fputs(payload.c_str(), stdout);
    }
    return 0;
}

int
cmdSubmit(const Options &opt)
{
    if (rejectTraceIo(opt, "submit"))
        return 1;
    std::string format = opt.format;
    if (!opt.formatSet) {
        format = "csv"; // the service only deals in artifact formats
    } else if (format != "csv" && format != "json") {
        std::fprintf(stderr, "submit: --format must be csv or json\n");
        return 1;
    }
    if (opt.out) {
        // Writability probe in append mode, like cmdSweep: the daemon
        // must not burn grid time for an artifact with nowhere to land
        // (and an existing report must not be truncated by the probe).
        std::FILE *f = std::fopen(opt.out->c_str(), "a");
        if (!f) {
            std::fprintf(stderr, "cannot open %s\n", opt.out->c_str());
            return 1;
        }
        std::fclose(f);
    }
    try {
        service::ServiceClient client(opt.socket, clientOptions(opt));
        service::Frame request("submit");
        if (opt.suiteSet)
            request.addString("suite", opt.suite);
        request.addString("benches", opt.benches);
        request.addString("cores", opt.cores);
        request.addUint("insts", opt.insts);
        if (opt.seed)
            request.addUint("seed", *opt.seed);
        request.addString("format", format);
        if (opt.deadlineSecSet)
            request.addUint("deadline_sec", opt.deadlineSec);
        if (opt.trace)
            request.addUint("trace", 1);
        if (opt.wait)
            request.addUint("wait", 1);

        const service::Frame response = client.request(request);
        if (response.type() == "busy") {
            std::fprintf(stderr,
                         "submit: server busy (queue depth %llu); "
                         "retry later\n",
                         (unsigned long long)response.uintField("depth",
                                                                0));
            return 1;
        }
        if (response.type() != "submitted") {
            std::fprintf(stderr, "submit: %s\n",
                         response.stringField("message", "unexpected '" +
                                              response.type() +
                                              "' response").c_str());
            return 1;
        }
        const uint64_t job = response.uintField("job", 0);
        const std::string trace_file = response.stringField("trace_file");
        std::fprintf(stderr, "submit: job %llu (fp=%s, %llu rows)%s%s\n",
                     (unsigned long long)job,
                     response.stringField("fp").c_str(),
                     (unsigned long long)response.uintField("rows", 0),
                     trace_file.empty() ? "" : " trace=",
                     trace_file.c_str());
        if (!opt.wait)
            return 0;

        const service::Frame result = client.readFrame();
        if (result.type() != "result") {
            std::fprintf(stderr, "submit: %s\n",
                         result.stringField("message", "unexpected '" +
                                            result.type() +
                                            "' response").c_str());
            return 1;
        }
        return emitPayload(opt, result.stringField("payload"));
    } catch (const service::ProtocolError &e) {
        std::fprintf(stderr, "submit: %s\n", e.what());
        return 1;
    }
}

/** `status` without --job: the daemon's own status frame — queue
 *  occupancy, identity, per-peer federation health. --json dumps the
 *  frame verbatim (machine-readable, stable field names). */
int
cmdDaemonStatus(const Options &opt)
{
    try {
        service::ServiceClient client(opt.socket, clientOptions(opt));
        const service::Frame response =
            client.request(service::Frame("status"));
        if (response.type() != "status") {
            std::fprintf(stderr, "status: %s\n",
                         response.stringField("message", "unexpected '" +
                                              response.type() +
                                              "' response").c_str());
            return 1;
        }
        if (opt.statusJson) {
            std::printf("%s\n", response.serialize().c_str());
            return 0;
        }
        std::printf("daemon: proto=%llu fp=%s active=%llu/%llu "
                    "queued=%llu completed=%llu failed=%llu%s\n",
                    (unsigned long long)response.uintField("proto", 0),
                    response.stringField("fp").c_str(),
                    (unsigned long long)response.uintField("active", 0),
                    (unsigned long long)response.uintField("queue_depth",
                                                           0),
                    (unsigned long long)response.uintField("queued", 0),
                    (unsigned long long)response.uintField("completed",
                                                           0),
                    (unsigned long long)response.uintField("failed", 0),
                    response.uintField("draining", 0) ? " draining"
                                                      : "");
        if (response.has("running_job")) {
            std::printf("running: job %llu\n",
                        (unsigned long long)response.uintField(
                            "running_job", 0));
        }
        const uint64_t peers = response.uintField("peers", 0);
        for (uint64_t i = 0; i < peers; ++i) {
            const std::string p = "peer" + std::to_string(i);
            const std::string error = response.stringField(p + "_error");
            std::printf("peer %s: %s rtt=%lluus inflight=%llu "
                        "active=%llu/%llu%s%s\n",
                        response.stringField(p).c_str(),
                        response.stringField(p + "_state").c_str(),
                        (unsigned long long)response.uintField(
                            p + "_rtt_us", 0),
                        (unsigned long long)response.uintField(
                            p + "_inflight", 0),
                        (unsigned long long)response.uintField(
                            p + "_active", 0),
                        (unsigned long long)response.uintField(
                            p + "_depth", 0),
                        error.empty() ? "" : " — ", error.c_str());
        }
        return 0;
    } catch (const service::ProtocolError &e) {
        std::fprintf(stderr, "status: %s\n", e.what());
        return 1;
    }
}

int
cmdStatusOrResult(const Options &opt)
{
    if (!opt.jobId) {
        if (opt.command == "status")
            return cmdDaemonStatus(opt);
        std::fprintf(stderr, "%s: requires --job N\n",
                     opt.command.c_str());
        return 1;
    }
    try {
        service::ServiceClient client(opt.socket, clientOptions(opt));
        service::Frame request(opt.command); // "status" or "result"
        request.addUint("job", *opt.jobId);
        const service::Frame response = client.request(request);
        if (response.type() == "error") {
            std::fprintf(stderr, "%s: %s\n", opt.command.c_str(),
                         response.stringField("message").c_str());
            return 1;
        }
        if (opt.command == "result") {
            if (response.type() != "result") {
                std::fprintf(stderr, "result: unexpected '%s' response\n",
                             response.type().c_str());
                return 1;
            }
            return emitPayload(opt, response.stringField("payload"));
        }
        if (opt.statusJson) {
            std::printf("%s\n", response.serialize().c_str());
            return 0;
        }
        std::printf("job %llu: %s%s (fp=%s)\n",
                    (unsigned long long)response.uintField("job", 0),
                    response.stringField("state").c_str(),
                    response.uintField("cached", 0) ? " (cached)" : "",
                    response.stringField("fp").c_str());
        return 0;
    } catch (const service::ProtocolError &e) {
        std::fprintf(stderr, "%s: %s\n", opt.command.c_str(), e.what());
        return 1;
    }
}

int
cmdCancel(const Options &opt)
{
    if (!opt.jobId) {
        std::fprintf(stderr, "cancel: requires --job N\n");
        return 1;
    }
    try {
        service::ServiceClient client(opt.socket, clientOptions(opt));
        service::Frame request("cancel");
        request.addUint("job", *opt.jobId);
        const service::Frame response = client.request(request);
        if (response.type() == "error") {
            std::fprintf(stderr, "cancel: %s\n",
                         response.stringField("message").c_str());
            return 1;
        }
        if (response.type() != "cancelled") {
            std::fprintf(stderr, "cancel: unexpected '%s' response\n",
                         response.type().c_str());
            return 1;
        }
        const std::string was = response.stringField("was");
        std::printf("job %llu cancelled (%s%s)\n",
                    (unsigned long long)response.uintField("job", 0),
                    was.c_str(),
                    was == "running" ? "; stops at the next row boundary"
                                     : "");
        return 0;
    } catch (const service::ProtocolError &e) {
        std::fprintf(stderr, "cancel: %s\n", e.what());
        return 1;
    }
}

int
cmdPing(const Options &opt)
{
    try {
        service::ServiceClient client(opt.socket, clientOptions(opt));
        const auto sent = std::chrono::steady_clock::now();
        const service::Frame pong = client.request(service::Frame("ping"));
        const auto rtt_us =
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - sent)
                .count();
        if (pong.type() != "pong") {
            std::fprintf(stderr, "ping: unexpected '%s' response\n",
                         pong.type().c_str());
            return 1;
        }
        std::printf("pong: proto=%llu sim=%llu fp=%s rtt_us=%lld\n",
                    (unsigned long long)pong.uintField("proto", 0),
                    (unsigned long long)client.hello().uintField("sim", 0),
                    pong.stringField("fp").c_str(), (long long)rtt_us);
        // A client built from different simulator semantics or workload
        // definitions would compute different result fingerprints; make
        // the divergence visible at ping time, not after a stale fetch.
        const std::string mine = fingerprintHex(registryFingerprint());
        if (pong.stringField("fp") != mine) {
            std::fprintf(stderr,
                         "ping: registry fingerprint mismatch (daemon %s,"
                         " this binary %s) — results will differ\n",
                         pong.stringField("fp").c_str(), mine.c_str());
        }
        return 0;
    } catch (const service::ProtocolError &e) {
        std::fprintf(stderr, "ping: %s\n", e.what());
        return 1;
    }
}

int
cmdMetrics(const Options &opt)
{
    try {
        service::ServiceClient client(opt.socket, clientOptions(opt));
        service::Frame request("metrics");
        request.addString("format", opt.statusJson ? "json" : "text");
        const service::Frame response = client.request(request);
        if (response.type() != "metrics") {
            std::fprintf(stderr, "metrics: %s\n",
                         response.stringField("message", "unexpected '" +
                                              response.type() +
                                              "' response").c_str());
            return 1;
        }
        std::fputs(response.stringField("payload").c_str(), stdout);
        return 0;
    } catch (const service::ProtocolError &e) {
        std::fprintf(stderr, "metrics: %s\n", e.what());
        return 1;
    }
}

int
cmdDisasm(const Options &opt)
{
    const Trace trace = makeTrace(opt);
    const size_t n =
        std::min<size_t>(opt.disasmCount, trace.size());
    for (size_t i = 0; i < n; ++i) {
        const DynInst &di = trace[i];
        std::printf("%6zu  pc=%-5u %-28s", i, di.pc,
                    disassemble(trace.program->code[di.pc]).c_str());
        if (di.isMem())
            std::printf("  ea=0x%llx", (unsigned long long)di.addr);
        if (di.hasDst())
            std::printf("  -> %llu", (unsigned long long)di.result());
        if (di.isControl())
            std::printf("  %s", di.taken() ? "taken" : "not-taken");
        std::printf("\n");
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    if (!parseArgs(argc, argv, &opt)) {
        usage();
        return 1;
    }
    if (opt.command != "merge" && !opt.inputs.empty()) {
        std::fprintf(stderr, "unexpected argument '%s'\n",
                     opt.inputs.front().c_str());
        return 1;
    }
    // Options that other commands would silently ignore are errors: a
    // user who asked for a grid slice must not get the full grid.
    if (opt.shard && opt.command != "sweep") {
        std::fprintf(stderr, "--shard only applies to 'sweep'\n");
        return 1;
    }
    if (opt.traceDir && opt.command != "sweep" &&
        opt.command != "compare" && opt.command != "suite" &&
        opt.command != "serve") {
        std::fprintf(stderr,
                     "--trace-dir only applies to the engine commands "
                     "(sweep, compare, suite, serve)\n");
        return 1;
    }
    if (opt.suiteSet && opt.command != "list" && opt.command != "compare" &&
        opt.command != "suite" && opt.command != "sweep" &&
        opt.command != "perf" && opt.command != "submit") {
        std::fprintf(stderr,
                     "--suite only applies to list, compare, suite, "
                     "sweep, perf, and submit\n");
        return 1;
    }
    const bool service_command =
        opt.command == "serve" || opt.command == "submit" ||
        opt.command == "status" || opt.command == "result" ||
        opt.command == "cancel" || opt.command == "ping" ||
        opt.command == "metrics";
    const bool client_command = service_command && opt.command != "serve";
    if (service_command && opt.socket.empty()) {
        std::fprintf(stderr, "%s: requires --socket PATH\n",
                     opt.command.c_str());
        return 1;
    }
    if (!opt.socket.empty() && !service_command) {
        std::fprintf(stderr,
                     "--socket only applies to the service commands "
                     "(serve, submit, status, result, cancel, ping, "
                     "metrics)\n");
        return 1;
    }
    if (opt.wait && opt.command != "submit") {
        std::fprintf(stderr, "--wait only applies to 'submit'\n");
        return 1;
    }
    if (opt.jobId && opt.command != "status" && opt.command != "result" &&
        opt.command != "cancel") {
        std::fprintf(stderr,
                     "--job only applies to 'status', 'result', and "
                     "'cancel'\n");
        return 1;
    }
    if (opt.queueDepthSet && opt.command != "serve") {
        std::fprintf(stderr, "--queue-depth only applies to 'serve'\n");
        return 1;
    }
    if (!opt.peers.empty() && opt.command != "serve") {
        std::fprintf(stderr, "--peers only applies to 'serve'\n");
        return 1;
    }
    if (!opt.listenTcp.empty() && opt.command != "serve") {
        std::fprintf(stderr, "--listen-tcp only applies to 'serve'\n");
        return 1;
    }
    if (opt.sliceDeadlineSet && opt.command != "serve") {
        std::fprintf(stderr,
                     "--slice-deadline-sec only applies to 'serve'\n");
        return 1;
    }
    if (opt.statusJson && opt.command != "status" &&
        opt.command != "metrics") {
        std::fprintf(stderr,
                     "--json only applies to 'status' and 'metrics'\n");
        return 1;
    }
    if (opt.jobTraceDir && opt.command != "serve") {
        std::fprintf(stderr, "--job-trace-dir only applies to 'serve'\n");
        return 1;
    }
    if (opt.trace && opt.command != "submit") {
        std::fprintf(stderr, "--trace only applies to 'submit'\n");
        return 1;
    }
    if (opt.cacheDir && opt.command != "serve") {
        std::fprintf(stderr, "--cache-dir only applies to 'serve'\n");
        return 1;
    }
    if (opt.deadlineSecSet && opt.command != "serve" &&
        opt.command != "submit") {
        std::fprintf(stderr,
                     "--deadline-sec only applies to 'serve' (daemon "
                     "default) and 'submit' (per job)\n");
        return 1;
    }
    if ((opt.timeoutSet || opt.retriesSet) && !client_command) {
        // A daemon has no read deadline by design (idle sessions are
        // free and end at drain); accepting these on serve or a local
        // command would look like they did something.
        std::fprintf(stderr,
                     "--timeout/--retries only apply to the client "
                     "verbs (submit, status, result, cancel, ping)\n");
        return 1;
    }
    if (service_command && opt.command != "submit" &&
        (opt.instsSet || opt.benches != "all" || opt.cores != "all" ||
         opt.seed)) {
        // Grid shape travels with `submit`; on the daemon or the other
        // client verbs these would be silently meaningless.
        std::fprintf(stderr,
                     "%s: --insts/--benches/--cores/--seed shape a "
                     "submit, not this command\n",
                     opt.command.c_str());
        return 1;
    }
    if (opt.formatSet && service_command && opt.command != "submit") {
        std::fprintf(stderr,
                     "--format travels with 'submit' (the artifact "
                     "format is fixed at submission)\n");
        return 1;
    }
    if (opt.out &&
        (opt.command == "serve" || opt.command == "ping" ||
         opt.command == "status" || opt.command == "cancel" ||
         opt.command == "metrics")) {
        std::fprintf(stderr,
                     "--out only applies to 'submit' and 'result' among "
                     "the service commands\n");
        return 1;
    }
    if (opt.jobs != 0 && service_command && opt.command != "serve") {
        // Parallelism is the daemon's --jobs; accepting it on a client
        // verb would look like it parallelized the request.
        std::fprintf(stderr,
                     "--jobs applies to the daemon ('serve'), not to "
                     "%s\n",
                     opt.command.c_str());
        return 1;
    }
    if (service_command &&
        (opt.l2Latency || opt.memLatency || opt.poisonBits ||
         opt.trigger || opt.blockingRally || opt.noMtRally)) {
        // The daemon runs every variant at Table 1 defaults; accepting
        // a config override here and ignoring it would return silently
        // wrong data under the submit==sweep byte-identity promise.
        std::fprintf(stderr,
                     "%s: config overrides (--l2-lat/--mem-lat/"
                     "--poison-bits/--trigger/--blocking-rally/"
                     "--no-mt-rally) are not supported over the service;"
                     " use 'sweep'\n",
                     opt.command.c_str());
        return 1;
    }
    if (opt.suiteSet && !SuiteRegistry::instance().has(opt.suite)) {
        std::fprintf(stderr,
                     "unknown suite '%s' (see 'icfp-sim suites')\n",
                     opt.suite.c_str());
        return 1;
    }
    if (opt.command == "list")
        return cmdList(opt);
    if (opt.command == "suites")
        return cmdSuites();
    if (opt.command == "cores")
        return cmdCores();
    if (opt.command == "run")
        return cmdRun(opt);
    if (opt.command == "compare")
        return cmdCompare(opt);
    if (opt.command == "suite")
        return cmdSuite(opt);
    if (opt.command == "sweep")
        return cmdSweep(opt);
    if (opt.command == "merge")
        return cmdMerge(opt);
    if (opt.command == "perf")
        return cmdPerf(opt);
    if (opt.command == "trace")
        return cmdTrace(opt);
    if (opt.command == "disasm")
        return cmdDisasm(opt);
    if (opt.command == "version")
        return cmdVersion();
    if (opt.command == "serve")
        return cmdServe(opt);
    if (opt.command == "submit")
        return cmdSubmit(opt);
    if (opt.command == "status" || opt.command == "result")
        return cmdStatusOrResult(opt);
    if (opt.command == "cancel")
        return cmdCancel(opt);
    if (opt.command == "ping")
        return cmdPing(opt);
    if (opt.command == "metrics")
        return cmdMetrics(opt);
    usage();
    return 1;
}
