/**
 * @file
 * icfp-sim — command-line driver for the simulation library.
 *
 * Subcommands:
 *   list                         show the benchmark analog suite
 *   run     --bench B --core C   run one model, print full statistics
 *   compare --bench B            run every model on one benchmark
 *   suite   --core C             run one model over the whole suite
 *   trace   --bench B --save-trace F   generate + save a golden trace
 *   disasm  --bench B [--n N]    print the first N dynamic instructions
 *
 * Common options:
 *   --insts N        dynamic instruction budget (default 200000)
 *   --seed S         workload RNG seed override
 *   --l2-lat N       L2 hit latency in cycles (Figure 6 sweeps)
 *   --mem-lat N      memory latency in cycles
 *   --poison-bits N  iCFP poison-vector width (1..16)
 *   --trigger T      advance trigger: none | l2 | any
 *   --blocking-rally use single blocking rallies (SLTP-style iCFP)
 *   --no-mt-rally    disable multithreaded rally+tail execution
 *   --load-trace F   replay a saved trace instead of generating one
 *   --save-trace F   also save the generated trace
 *
 * Exit status: 0 on success, 1 on usage errors.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "isa/trace_io.hh"
#include "sim/report.hh"
#include "sim/simulator.hh"

namespace {

using namespace icfp;

/** Parsed command line. */
struct Options
{
    std::string command;
    std::string bench = "mcf";
    std::string core = "icfp";
    uint64_t insts = kDefaultBenchInsts;
    std::optional<uint64_t> seed;
    std::optional<Cycle> l2Latency;
    std::optional<Cycle> memLatency;
    std::optional<unsigned> poisonBits;
    std::optional<std::string> trigger;
    bool blockingRally = false;
    bool noMtRally = false;
    std::optional<std::string> loadTrace;
    std::optional<std::string> saveTrace;
    unsigned disasmCount = 32;
};

void
usage()
{
    std::fprintf(stderr,
                 "usage: icfp-sim <list|run|compare|suite|trace|disasm> "
                 "[options]\n"
                 "run 'icfp-sim help' or see the file comment in "
                 "tools/icfp_sim_main.cc for the option list\n");
}

/** Parse a named core kind; nullopt if unknown. */
std::optional<CoreKind>
parseCore(const std::string &name)
{
    if (name == "inorder" || name == "in-order")
        return CoreKind::InOrder;
    if (name == "runahead" || name == "ra")
        return CoreKind::Runahead;
    if (name == "multipass" || name == "mp")
        return CoreKind::Multipass;
    if (name == "sltp")
        return CoreKind::Sltp;
    if (name == "icfp")
        return CoreKind::ICfp;
    if (name == "ooo")
        return CoreKind::Ooo;
    if (name == "cfp")
        return CoreKind::Cfp;
    return std::nullopt;
}

bool
parseArgs(int argc, char **argv, Options *opt)
{
    if (argc < 2)
        return false;
    opt->command = argv[1];

    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n", arg.c_str());
                std::exit(1);
            }
            return argv[++i];
        };
        if (arg == "--bench") {
            opt->bench = next();
        } else if (arg == "--core") {
            opt->core = next();
        } else if (arg == "--insts") {
            opt->insts = std::strtoull(next(), nullptr, 0);
        } else if (arg == "--seed") {
            opt->seed = std::strtoull(next(), nullptr, 0);
        } else if (arg == "--l2-lat") {
            opt->l2Latency = std::strtoull(next(), nullptr, 0);
        } else if (arg == "--mem-lat") {
            opt->memLatency = std::strtoull(next(), nullptr, 0);
        } else if (arg == "--poison-bits") {
            opt->poisonBits =
                static_cast<unsigned>(std::strtoul(next(), nullptr, 0));
        } else if (arg == "--trigger") {
            opt->trigger = next();
        } else if (arg == "--blocking-rally") {
            opt->blockingRally = true;
        } else if (arg == "--no-mt-rally") {
            opt->noMtRally = true;
        } else if (arg == "--load-trace") {
            opt->loadTrace = next();
        } else if (arg == "--save-trace") {
            opt->saveTrace = next();
        } else if (arg == "--n") {
            opt->disasmCount =
                static_cast<unsigned>(std::strtoul(next(), nullptr, 0));
        } else {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            return false;
        }
    }
    return true;
}

/** Apply option overrides onto a default SimConfig. */
SimConfig
makeConfig(const Options &opt)
{
    SimConfig cfg;
    if (opt.l2Latency)
        cfg.mem.l2HitLatency = *opt.l2Latency;
    if (opt.memLatency)
        cfg.mem.memory.accessLatency = *opt.memLatency;
    if (opt.poisonBits) {
        cfg.icfp.poisonBits = *opt.poisonBits;
        cfg.mem.poisonBits = *opt.poisonBits;
    }
    if (opt.trigger) {
        AdvanceTrigger t = AdvanceTrigger::AnyDcache;
        if (*opt.trigger == "none")
            t = AdvanceTrigger::None;
        else if (*opt.trigger == "l2")
            t = AdvanceTrigger::L2Only;
        else if (*opt.trigger != "any")
            ICFP_FATAL("bad --trigger %s", opt.trigger->c_str());
        cfg.icfp.trigger = t;
        cfg.runahead.trigger = t;
    }
    if (opt.blockingRally)
        cfg.icfp.nonBlockingRally = false;
    if (opt.noMtRally)
        cfg.icfp.multithreadedRally = false;
    return cfg;
}

/** Build (or load) the golden trace per the options. */
Trace
makeTrace(const Options &opt)
{
    if (opt.loadTrace)
        return loadTraceFile(*opt.loadTrace);
    BenchmarkSpec spec = findBenchmark(opt.bench);
    if (opt.seed)
        spec.workload.seed = *opt.seed;
    Trace trace = makeBenchTrace(spec, opt.insts);
    if (opt.saveTrace)
        saveTraceFile(*opt.saveTrace, trace);
    return trace;
}

void
printResult(const RunResult &r)
{
    Table t("Run statistics: " + r.core);
    t.setColumns({"metric", "value"});
    t.addRow("instructions", {double(r.instructions)}, 0);
    t.addRow("cycles", {double(r.cycles)}, 0);
    t.addRow("IPC", {r.ipc()}, 3);
    t.addRow("D$ misses/KI", {r.missPerKi(r.mem.dcacheMisses)}, 2);
    t.addRow("L2 misses/KI", {r.missPerKi(r.mem.l2Misses)}, 2);
    t.addRow("D$ MLP", {r.dcacheMlp}, 2);
    t.addRow("L2 MLP", {r.l2Mlp}, 2);
    t.addRow("prefetch hits", {double(r.mem.prefetchHits)}, 0);
    t.addRow("cond mispredicts", {double(r.branch.condMispredicts)}, 0);
    t.addRow("advance entries", {double(r.advanceEntries)}, 0);
    t.addRow("advance insts", {double(r.advanceInsts)}, 0);
    t.addRow("sliced insts", {double(r.slicedInsts)}, 0);
    t.addRow("rally passes", {double(r.rallyPasses)}, 0);
    t.addRow("rally insts/KI", {r.rallyPerKi()}, 1);
    t.addRow("squashes", {double(r.squashes)}, 0);
    t.addRow("simple-RA entries", {double(r.simpleRaEntries)}, 0);
    t.addRow("SB excess hops/load",
             {r.sbChainLoads ? double(r.sbExcessHops) / double(r.sbChainLoads)
                             : 0.0},
             3);
    t.print();
}

int
cmdList()
{
    Table t("Benchmark analogs (paper Table 2 reference miss rates)");
    t.setColumns({"bench", "fp?", "paper D$/KI", "paper L2/KI"});
    for (const BenchmarkSpec &spec : spec2000Suite()) {
        t.addRow(spec.name,
                 {spec.isFp ? 1.0 : 0.0, spec.paperDcacheMissKi,
                  spec.paperL2MissKi},
                 0);
    }
    t.print();
    return 0;
}

int
cmdRun(const Options &opt)
{
    const auto kind = parseCore(opt.core);
    if (!kind) {
        std::fprintf(stderr, "unknown core '%s'\n", opt.core.c_str());
        return 1;
    }
    const Trace trace = makeTrace(opt);
    const SimConfig cfg = makeConfig(opt);
    printResult(simulate(*kind, cfg, trace));
    return 0;
}

int
cmdCompare(const Options &opt)
{
    const Trace trace = makeTrace(opt);
    const SimConfig cfg = makeConfig(opt);
    Table t("All models on " + opt.bench);
    t.setColumns({"core", "IPC", "speedup %", "D$ MLP", "L2 MLP",
                  "rally/KI"});
    const RunResult base = simulate(CoreKind::InOrder, cfg, trace);
    for (CoreKind kind :
         {CoreKind::InOrder, CoreKind::Runahead, CoreKind::Multipass,
          CoreKind::Sltp, CoreKind::ICfp, CoreKind::Ooo, CoreKind::Cfp}) {
        const RunResult r = simulate(kind, cfg, trace);
        t.addRow(coreKindName(kind),
                 {r.ipc(), percentSpeedup(base, r), r.dcacheMlp, r.l2Mlp,
                  r.rallyPerKi()},
                 2);
    }
    t.print();
    return 0;
}

int
cmdSuite(const Options &opt)
{
    const auto kind = parseCore(opt.core);
    if (!kind) {
        std::fprintf(stderr, "unknown core '%s'\n", opt.core.c_str());
        return 1;
    }
    const SimConfig cfg = makeConfig(opt);
    Table t("Suite results: " + opt.core);
    t.setColumns({"bench", "IPC", "D$ miss/KI", "L2 miss/KI", "D$ MLP",
                  "L2 MLP"});
    for (const BenchmarkSpec &spec : spec2000Suite()) {
        Options o = opt;
        o.bench = spec.name;
        const Trace trace = makeTrace(o);
        const RunResult r = simulate(*kind, cfg, trace);
        t.addRow(spec.name,
                 {r.ipc(), r.missPerKi(r.mem.dcacheMisses),
                  r.missPerKi(r.mem.l2Misses), r.dcacheMlp, r.l2Mlp},
                 2);
    }
    t.print();
    return 0;
}

int
cmdTrace(const Options &opt)
{
    if (!opt.saveTrace) {
        std::fprintf(stderr, "trace: requires --save-trace FILE\n");
        return 1;
    }
    const Trace trace = makeTrace(opt);
    std::printf("saved %zu dynamic instructions to %s\n", trace.size(),
                opt.saveTrace->c_str());
    return 0;
}

int
cmdDisasm(const Options &opt)
{
    const Trace trace = makeTrace(opt);
    const size_t n =
        std::min<size_t>(opt.disasmCount, trace.size());
    for (size_t i = 0; i < n; ++i) {
        const DynInst &di = trace[i];
        std::printf("%6zu  pc=%-5u %-28s", i, di.pc,
                    disassemble(trace.program->code[di.pc]).c_str());
        if (di.isMem())
            std::printf("  ea=0x%llx", (unsigned long long)di.addr);
        if (di.hasDst())
            std::printf("  -> %llu", (unsigned long long)di.result);
        if (di.isControl())
            std::printf("  %s", di.taken ? "taken" : "not-taken");
        std::printf("\n");
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    if (!parseArgs(argc, argv, &opt)) {
        usage();
        return 1;
    }
    if (opt.command == "list")
        return cmdList();
    if (opt.command == "run")
        return cmdRun(opt);
    if (opt.command == "compare")
        return cmdCompare(opt);
    if (opt.command == "suite")
        return cmdSuite(opt);
    if (opt.command == "trace")
        return cmdTrace(opt);
    if (opt.command == "disasm")
        return cmdDisasm(opt);
    usage();
    return 1;
}
