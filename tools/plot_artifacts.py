#!/usr/bin/env python3
"""Render icfp-sim artifacts to SVG — the report layer over the raw grids.

Inputs are the machine-readable artifacts the harnesses already emit:

  * sweep CSVs (``icfp-sim sweep --format csv``, ``ICFP_BENCH_CSV`` dumps,
    fetched service artifacts) -> a fig5-style grouped-bar chart of
    percent speedup over the in-order baseline, one group per benchmark,
    one bar per scheme;
  * ``BENCH_perf.json`` files (``icfp-sim perf``) -> simulator throughput
    per scheme; several files plot as a trajectory in argument order
    (the before/after ledger of the perf work), one file as bars;
  * metrics JSON dumps (``icfp-sim metrics --json``) -> a per-scheme
    replay-latency histogram from the ``icfp_replay_duration_us``
    bucket samples, one bar group per latency bucket, one bar per
    scheme (bench and peer labels are summed away).

Standard library only (CI runs this right after the smoke sweeps), and
deterministic: the same artifact bytes render the same SVG bytes.

Usage:
  python3 tools/plot_artifacts.py --out-dir plots \
      --sweep-csv build/sweep.csv [--sweep-csv ...] \
      --perf-json build/BENCH_perf.json [--perf-json ...] \
      --metrics-json build/metrics.json [--metrics-json ...]
"""

import argparse
import csv
import json
import os
import sys

# The validated categorical palette (fixed slot order, never cycled; a
# 7th+ series folds into the cap check below). Light-surface steps.
PALETTE = [
    "#2a78d6",  # blue
    "#eb6834",  # orange
    "#1baf7a",  # aqua
    "#eda100",  # yellow
    "#e87ba4",  # magenta
    "#008300",  # green
    "#4a3aa7",  # violet
    "#e34948",  # red
]
SURFACE = "#fcfcfb"
INK = "#0b0b0b"
INK_SOFT = "#52514e"
GRID = "#e4e3df"
AXIS = "#b5b4ae"

FONT = 'font-family="system-ui, -apple-system, sans-serif"'


def esc(text):
    return (str(text).replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;").replace('"', "&quot;"))


class Svg:
    """A tiny deterministic SVG assembler."""

    def __init__(self, width, height):
        self.width = width
        self.height = height
        self.parts = [
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
            f'height="{height}" viewBox="0 0 {width} {height}">',
            f'<rect width="{width}" height="{height}" fill="{SURFACE}"/>',
        ]

    def rect(self, x, y, w, h, fill, rx=0, title=None):
        tip = f"<title>{esc(title)}</title>" if title else ""
        self.parts.append(
            f'<rect x="{x:.1f}" y="{y:.1f}" width="{w:.1f}" '
            f'height="{h:.1f}" rx="{rx}" fill="{fill}">{tip}</rect>'
            if tip else
            f'<rect x="{x:.1f}" y="{y:.1f}" width="{w:.1f}" '
            f'height="{h:.1f}" rx="{rx}" fill="{fill}"/>')

    def line(self, x1, y1, x2, y2, stroke, width=1):
        self.parts.append(
            f'<line x1="{x1:.1f}" y1="{y1:.1f}" x2="{x2:.1f}" '
            f'y2="{y2:.1f}" stroke="{stroke}" stroke-width="{width}"/>')

    def polyline(self, points, stroke, width=2):
        text = " ".join(f"{x:.1f},{y:.1f}" for x, y in points)
        self.parts.append(
            f'<polyline points="{text}" fill="none" stroke="{stroke}" '
            f'stroke-width="{width}" stroke-linejoin="round" '
            f'stroke-linecap="round"/>')

    def circle(self, x, y, r, fill, title=None):
        tip = f"<title>{esc(title)}</title>" if title else ""
        self.parts.append(
            f'<circle cx="{x:.1f}" cy="{y:.1f}" r="{r}" fill="{fill}" '
            f'stroke="{SURFACE}" stroke-width="2">{tip}</circle>'
            if tip else
            f'<circle cx="{x:.1f}" cy="{y:.1f}" r="{r}" fill="{fill}" '
            f'stroke="{SURFACE}" stroke-width="2"/>')

    def text(self, x, y, content, size=12, fill=INK, anchor="start",
             rotate=None):
        transform = (f' transform="rotate({rotate} {x:.1f} {y:.1f})"'
                     if rotate is not None else "")
        self.parts.append(
            f'<text x="{x:.1f}" y="{y:.1f}" font-size="{size}" {FONT} '
            f'fill="{fill}" text-anchor="{anchor}"{transform}>'
            f'{esc(content)}</text>')

    def write(self, path):
        self.parts.append("</svg>")
        with open(path, "w", encoding="utf-8") as f:
            f.write("\n".join(self.parts) + "\n")
        print(f"plot_artifacts: wrote {path}")


def nice_ticks(lo, hi, n=5):
    """Round tick positions covering [lo, hi]."""
    span = hi - lo
    if span <= 0:
        return [lo]
    raw = span / n
    mag = 10 ** len(str(int(raw))) / 10 if raw >= 1 else 1
    for step in (1, 2, 2.5, 5, 10):
        if raw <= step * mag:
            step *= mag
            break
    else:
        step = 10 * mag
    first = int(lo / step) * step
    ticks = []
    t = first
    while t <= hi + step * 0.01:
        if t >= lo - step * 0.01:
            ticks.append(round(t, 6))
        t += step
    return ticks


def read_sweep_csv(path):
    """-> (benches in file order, series labels in file order,
           {(bench, series): (cycles, core)})."""
    benches, series, cells = [], [], {}
    with open(path, newline="", encoding="utf-8") as f:
        for row in csv.DictReader(f):
            if row.get("bench") is None or row.get("cycles") is None:
                raise SystemExit(
                    f"{path}: not a sweep CSV (no bench/cycles columns)")
            bench, variant = row["bench"], row["variant"]
            if bench not in benches:
                benches.append(bench)
            if variant not in series:
                series.append(variant)
            cells[(bench, variant)] = (int(row["cycles"]), row["core"])
    return benches, series, cells


def plot_speedups(path, out_dir):
    benches, series, cells = read_sweep_csv(path)

    # The baseline is the in-order row of each benchmark (fig5's "base").
    base_series = [s for s in series
                   if any(cells.get((b, s), (0, ""))[1] == "in-order"
                          for b in benches)]
    if not base_series:
        print(f"plot_artifacts: {path}: no in-order baseline rows; "
              "skipping speedup plot", file=sys.stderr)
        return
    base = base_series[0]
    others = [s for s in series if s != base]
    if not others:
        print(f"plot_artifacts: {path}: only a baseline series; "
              "nothing to plot", file=sys.stderr)
        return
    if len(others) > len(PALETTE):
        # Fixed palette order, never cycled: past 8 series the chart
        # stops being readable — fail loudly rather than inventing hues.
        raise SystemExit(f"{path}: {len(others)} series exceeds the "
                         f"{len(PALETTE)}-slot palette; split the grid")

    speedups = {}
    lo, hi = 0.0, 0.0
    for b in benches:
        if (b, base) not in cells:
            continue
        base_cycles = cells[(b, base)][0]
        for s in others:
            if (b, s) not in cells:
                continue
            pct = 100.0 * (base_cycles / cells[(b, s)][0] - 1.0)
            speedups[(b, s)] = pct
            lo, hi = min(lo, pct), max(hi, pct)

    bar_w, gap, group_pad = 9, 2, 14
    group_w = len(others) * (bar_w + gap) - gap + group_pad
    margin_l, margin_r, margin_t, margin_b = 64, 16, 56, 96
    plot_w = len(benches) * group_w
    plot_h = 320
    svg = Svg(margin_l + plot_w + margin_r, margin_t + plot_h + margin_b)

    title = os.path.splitext(os.path.basename(path))[0]
    svg.text(margin_l, 24, f"% speedup over in-order — {title}", 15, INK)
    svg.text(margin_l, 42, "grouped by benchmark; one bar per scheme",
             11, INK_SOFT)

    ticks = nice_ticks(lo, hi * 1.05 if hi > 0 else 1.0)
    lo_t, hi_t = min(ticks + [lo]), max(ticks + [hi])
    span = hi_t - lo_t or 1.0

    def y_of(v):
        return margin_t + plot_h * (1.0 - (v - lo_t) / span)

    for t in ticks:
        y = y_of(t)
        svg.line(margin_l, y, margin_l + plot_w, y,
                 AXIS if t == 0 else GRID, 1)
        svg.text(margin_l - 6, y + 4, f"{t:g}", 11, INK_SOFT, "end")
    svg.text(16, margin_t + plot_h / 2, "% speedup", 11, INK_SOFT,
             "middle", rotate=-90)

    for bi, b in enumerate(benches):
        gx = margin_l + bi * group_w + group_pad / 2
        for si, s in enumerate(others):
            if (b, s) not in speedups:
                continue
            v = speedups[(b, s)]
            x = gx + si * (bar_w + gap)
            y0, y1 = y_of(max(v, 0.0)), y_of(min(v, 0.0))
            svg.rect(x, y0, bar_w, max(y1 - y0, 1.0), PALETTE[si], rx=2,
                     title=f"{b} · {s}: {v:+.1f}%")
        svg.text(gx + (group_w - group_pad) / 2,
                 margin_t + plot_h + 14, b, 11, INK_SOFT, "end",
                 rotate=-45)

    # Legend: identity is never color-alone — swatch + label per scheme.
    lx, ly = margin_l, margin_t + plot_h + margin_b - 18
    for si, s in enumerate(others):
        svg.rect(lx, ly - 9, 10, 10, PALETTE[si], rx=2)
        svg.text(lx + 14, ly, s, 11, INK)
        lx += 22 + 7 * len(s)

    out = os.path.join(out_dir, f"{title}_speedup.svg")
    svg.write(out)


def read_perf_json(path):
    with open(path, encoding="utf-8") as f:
        data = json.load(f)
    if data.get("schema") != "icfp-sim-perf-v1":
        raise SystemExit(f"{path}: not an icfp-sim-perf-v1 artifact")
    schemes = [(s["scheme"], s["insts_per_sec"] / 1e6)
               for s in data["schemes"]]
    schemes.append(("trace gen", data["trace_gen"]["insts_per_sec"] / 1e6))
    schemes.append(("overall replay",
                    data["replay"]["insts_per_sec"] / 1e6))
    label = os.path.splitext(os.path.basename(path))[0]
    return label, data.get("grid", "?"), schemes


def plot_perf(paths, out_dir):
    reports = [read_perf_json(p) for p in paths]
    # Series = the first report's scheme order (fixed palette order);
    # later reports must describe the same grid shape to be a trajectory.
    names = [name for name, _ in reports[0][2]]
    if len(names) > len(PALETTE) + 2:
        raise SystemExit(f"{paths[0]}: too many schemes to color")

    margin_l, margin_t, margin_b = 64, 56, 72
    plot_h = 300

    hi = max(v for _, _, ss in reports for _, v in ss)
    ticks = nice_ticks(0.0, hi * 1.1)
    span = max(ticks) or 1.0

    def y_of(v):
        return margin_t + plot_h * (1.0 - v / span)

    def color_of(i, name):
        # trace gen / overall replay ride as neutral-ink context series.
        return INK_SOFT if name in ("trace gen", "overall replay") \
            else PALETTE[i % len(PALETTE)]

    if len(reports) == 1:
        label, grid, schemes = reports[0]
        bar_w, gap = 34, 14
        plot_w = len(schemes) * (bar_w + gap)
        svg = Svg(margin_l + plot_w + 120, margin_t + plot_h + margin_b)
        svg.text(margin_l, 24,
                 f"simulator throughput — {label} (grid {grid})", 15)
        svg.text(margin_l, 42, "million simulated instructions per host "
                 "second", 11, INK_SOFT)
        for t in ticks:
            svg.line(margin_l, y_of(t), margin_l + plot_w, y_of(t),
                     AXIS if t == 0 else GRID, 1)
            svg.text(margin_l - 6, y_of(t) + 4, f"{t:g}", 11, INK_SOFT,
                     "end")
        for i, (name, v) in enumerate(schemes):
            x = margin_l + i * (bar_w + gap) + gap / 2
            svg.rect(x, y_of(v), bar_w, y_of(0) - y_of(v) or 1.0,
                     color_of(i, name), rx=3,
                     title=f"{name}: {v:.2f} Minsts/s")
            svg.text(x + bar_w / 2, y_of(v) - 5, f"{v:.1f}", 10,
                     INK_SOFT, "middle")
            svg.text(x + bar_w / 2, margin_t + plot_h + 14, name, 11,
                     INK_SOFT, "end", rotate=-35)
        out = os.path.join(out_dir, "perf_throughput.svg")
        svg.write(out)
        return

    step = 120
    plot_w = (len(reports) - 1) * step + 40
    svg = Svg(margin_l + plot_w + 180, margin_t + plot_h + margin_b)
    svg.text(margin_l, 24, "simulator throughput trajectory", 15)
    svg.text(margin_l, 42,
             "Minsts/s per scheme across perf artifacts (argument order)",
             11, INK_SOFT)
    for t in ticks:
        svg.line(margin_l, y_of(t), margin_l + plot_w, y_of(t),
                 AXIS if t == 0 else GRID, 1)
        svg.text(margin_l - 6, y_of(t) + 4, f"{t:g}", 11, INK_SOFT, "end")
    for ri, (label, _, _) in enumerate(reports):
        svg.text(margin_l + 20 + ri * step, margin_t + plot_h + 16,
                 label, 10, INK_SOFT, "middle")

    for i, name in enumerate(names):
        color = color_of(i, name)
        # Pair each point with its value at build time: an artifact
        # missing this scheme (older binary, other suite) just leaves a
        # gap instead of shifting later points onto the wrong report.
        points = []
        for ri, (_, _, schemes) in enumerate(reports):
            values = dict(schemes)
            if name in values:
                points.append((margin_l + 20 + ri * step,
                               y_of(values[name]), values[name]))
        if not points:
            continue
        svg.polyline([(x, y) for x, y, _ in points], color)
        for x, y, v in points:
            svg.circle(x, y, 4, color,
                       title=f"{name}: {v:.2f} Minsts/s")
        # Direct label at the line's end; identity also in the legend.
        x, y, _ = points[-1]
        svg.text(x + 10, y + 4, name, 11, color)

    out = os.path.join(out_dir, "perf_trajectory.svg")
    svg.write(out)


def parse_sample_name(name):
    """``base{k="v",...}`` -> (base, {k: v}); label values may contain
    escaped quotes/backslashes (escapeLabelValue's format)."""
    brace = name.find("{")
    if brace < 0:
        return name, {}
    base, labels, body = name[:brace], {}, name[brace + 1:-1]
    i = 0
    while i < len(body):
        eq = body.index('="', i)
        key = body[i:eq]
        j = eq + 2
        value = []
        while body[j] != '"':
            if body[j] == "\\":
                j += 1
            value.append(body[j])
            j += 1
        labels[key] = "".join(value)
        i = j + 1
        if i < len(body) and body[i] == ",":
            i += 1
    return base, labels


def fmt_le(le):
    """A bucket bound in microseconds -> a human axis label."""
    if le == "+Inf":
        return "+Inf"
    us = int(le)
    if us >= 1000000:
        return f"≤{us // 1000000}s" if us % 1000000 == 0 \
            else f"≤{us / 1000000:g}s"
    if us >= 1000:
        return f"≤{us // 1000}ms" if us % 1000 == 0 \
            else f"≤{us / 1000:g}ms"
    return f"≤{us}µs"


def plot_replay_latency(path, out_dir):
    """Metrics JSON dump -> per-scheme replay-latency histogram."""
    with open(path, encoding="utf-8") as f:
        data = json.load(f)
    if not isinstance(data, dict):
        raise SystemExit(f"{path}: not a flat metrics JSON object")

    # Cumulative bucket counts summed over bench (and, in a fleet
    # rollup, peer) labels; cumulative sums stay cumulative under +.
    cumulative, les = {}, set()
    for name, value in data.items():
        base, labels = parse_sample_name(name)
        if base != "icfp_replay_duration_us_bucket":
            continue
        core, le = labels.get("core", "?"), labels.get("le")
        if le is None:
            continue
        cumulative[(core, le)] = cumulative.get((core, le), 0) + int(value)
        les.add(le)
    if not cumulative:
        print(f"plot_artifacts: {path}: no icfp_replay_duration_us "
              "bucket samples; skipping replay-latency plot",
              file=sys.stderr)
        return

    def le_key(le):
        return float("inf") if le == "+Inf" else float(le)

    bounds = sorted(les, key=le_key)
    cores = sorted({core for core, _ in cumulative})
    if len(cores) > len(PALETTE):
        raise SystemExit(f"{path}: {len(cores)} schemes exceeds the "
                         f"{len(PALETTE)}-slot palette")

    # Cumulative -> per-bucket, dropping empty trailing buckets keeps
    # the chart honest about where latencies actually land.
    counts = {}
    hi = 0
    for core in cores:
        prev = 0
        for le in bounds:
            cum = cumulative.get((core, le), prev)
            counts[(core, le)] = max(cum - prev, 0)
            hi = max(hi, counts[(core, le)])
            prev = cum
    while len(bounds) > 1 and all(
            counts.get((core, bounds[-1]), 0) == 0 for core in cores):
        bounds.pop()

    bar_w, gap, group_pad = 9, 2, 14
    group_w = len(cores) * (bar_w + gap) - gap + group_pad
    margin_l, margin_r, margin_t, margin_b = 64, 16, 56, 96
    plot_w = len(bounds) * group_w
    plot_h = 300
    svg = Svg(margin_l + plot_w + margin_r, margin_t + plot_h + margin_b)

    title = os.path.splitext(os.path.basename(path))[0]
    svg.text(margin_l, 24, f"replay latency by scheme — {title}", 15, INK)
    svg.text(margin_l, 42, "replays per duration bucket "
             "(icfp_replay_duration_us; benches and peers summed)",
             11, INK_SOFT)

    ticks = nice_ticks(0.0, hi * 1.1 if hi else 1.0)
    span = max(ticks) or 1.0

    def y_of(v):
        return margin_t + plot_h * (1.0 - v / span)

    for t in ticks:
        svg.line(margin_l, y_of(t), margin_l + plot_w, y_of(t),
                 AXIS if t == 0 else GRID, 1)
        svg.text(margin_l - 6, y_of(t) + 4, f"{t:g}", 11, INK_SOFT, "end")
    svg.text(16, margin_t + plot_h / 2, "replays", 11, INK_SOFT,
             "middle", rotate=-90)

    for bi, le in enumerate(bounds):
        gx = margin_l + bi * group_w + group_pad / 2
        for ci, core in enumerate(cores):
            v = counts.get((core, le), 0)
            if v == 0:
                continue
            x = gx + ci * (bar_w + gap)
            svg.rect(x, y_of(v), bar_w, max(y_of(0) - y_of(v), 1.0),
                     PALETTE[ci], rx=2,
                     title=f"{core} · {fmt_le(le)}: {v} replays")
        svg.text(gx + (group_w - group_pad) / 2, margin_t + plot_h + 14,
                 fmt_le(le), 11, INK_SOFT, "end", rotate=-45)

    lx, ly = margin_l, margin_t + plot_h + margin_b - 18
    for ci, core in enumerate(cores):
        svg.rect(lx, ly - 9, 10, 10, PALETTE[ci], rx=2)
        svg.text(lx + 14, ly, core, 11, INK)
        lx += 22 + 7 * len(core)

    out = os.path.join(out_dir, f"{title}_replay_latency.svg")
    svg.write(out)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sweep-csv", action="append", default=[],
                        help="sweep CSV artifact (repeatable)")
    parser.add_argument("--perf-json", action="append", default=[],
                        help="BENCH_perf.json artifact (repeatable; "
                             "several plot as a trajectory)")
    parser.add_argument("--metrics-json", action="append", default=[],
                        help="metrics JSON dump from "
                             "'icfp-sim metrics --json' (repeatable)")
    parser.add_argument("--out-dir", default="plots",
                        help="output directory for SVGs")
    args = parser.parse_args()
    if not args.sweep_csv and not args.perf_json and not args.metrics_json:
        parser.error("give at least one --sweep-csv, --perf-json, or "
                     "--metrics-json")

    os.makedirs(args.out_dir, exist_ok=True)
    for path in args.sweep_csv:
        plot_speedups(path, args.out_dir)
    if args.perf_json:
        plot_perf(args.perf_json, args.out_dir)
    for path in args.metrics_json:
        plot_replay_latency(path, args.out_dir)


if __name__ == "__main__":
    main()
