/**
 * @file
 * The Figure 1 miss scenarios as runnable micro-programs: lone L2 miss,
 * independent L2 misses, dependent L2 misses, independent chains of
 * dependent misses, and a data-cache miss under an L2 miss. For each
 * scenario the four non-blocking schemes are compared against in-order,
 * qualitatively reproducing the figure's timelines.
 *
 *   $ ./build/examples/miss_scenarios
 */

#include <cstdio>
#include <functional>

#include "sim/report.hh"
#include "sim/simulator.hh"

using namespace icfp;

namespace {

constexpr size_t kRegion = 32 * 1024 * 1024;
constexpr Addr kColdA = 0x400000;  // cold lines, far apart
constexpr Addr kColdB = 0x800000;
constexpr unsigned kIters = 400;

/** Common loop scaffold: body(), then counter++ / branch. */
Program
loopProgram(const char *name, size_t data_bytes,
            const std::function<void(ProgramBuilder &)> &init,
            const std::function<void(ProgramBuilder &, int64_t)> &body)
{
    ProgramBuilder b(data_bytes);
    init(b);
    b.li(20, kIters); // bound
    b.li(21, 0);      // counter
    const uint32_t loop = b.label();
    body(b, 0);
    b.addi(21, 21, 1);
    b.blt(21, 20, loop);
    b.halt();
    return b.build(name);
}

void
runScenario(const char *title, const Program &program, const char *note)
{
    const Trace trace = Interpreter::run(program, 100000);
    SimConfig cfg;

    Table table(title);
    table.setColumns({"core", "cycles", "speedup %"});
    const RunResult base = simulate(CoreKind::InOrder, cfg, trace);
    const CoreKind kinds[] = {CoreKind::InOrder, CoreKind::Runahead,
                              CoreKind::Multipass, CoreKind::Sltp,
                              CoreKind::ICfp};
    for (const CoreKind kind : kinds) {
        const RunResult r = simulate(kind, cfg, trace);
        table.addRow(coreKindName(kind),
                     {double(r.cycles), percentSpeedup(base, r)}, 1);
    }
    table.addNote(note);
    table.print();
    std::puts("");
}

} // namespace

int
main()
{
    // (a) Lone L2 miss with one dependent instruction, plus
    //     miss-independent work the slice-based schemes can commit.
    runScenario(
        "Figure 1a: lone L2 miss",
        loopProgram(
            "lone-miss", kRegion,
            [](ProgramBuilder &b) { b.li(1, kColdA); },
            [](ProgramBuilder &b, int64_t) {
                b.ld(2, 1, 0);      // A: L2 miss
                b.add(3, 2, 2);     // B: depends on A
                for (int i = 0; i < 8; ++i)
                    b.addi(4, 21, 7); // C-F: independent work
                b.addi(1, 1, 4160); // 4096 would alias to 2 D$ sets
            }),
        "SLTP and iCFP commit the independent work and re-execute only "
        "the 2-instruction slice; Runahead re-executes everything.");

    // (b) Independent L2 misses.
    runScenario(
        "Figure 1b: independent L2 misses",
        loopProgram(
            "indep-miss", kRegion,
            [](ProgramBuilder &b) {
                b.li(1, kColdA);
                b.li(5, kColdB);
            },
            [](ProgramBuilder &b, int64_t) {
                b.ld(2, 1, 0);   // A
                b.add(3, 2, 2);  // use of A
                b.ld(6, 5, 0);   // E: independent of A
                b.add(7, 6, 6);  // use of E
                b.addi(1, 1, 4160); // 4096 would alias to 2 D$ sets
                b.addi(5, 5, 4160);
            }),
        "All four schemes overlap the misses; in-order stalls at the "
        "first use and serializes them.");

    // (c/d) Chains of dependent misses (pointer rings).
    {
        ProgramBuilder b(kRegion);
        const unsigned node = 8384; // set-spreading node spacing
        const size_t nodes = (kRegion / 2) / node;
        for (size_t i = 0; i < nodes; ++i) {
            b.poke(Addr{i} * node, (Addr{i} + 97) % nodes * node);
            b.poke(kRegion / 2 + Addr{i} * node,
                   kRegion / 2 + (Addr{i} + 193) % nodes * node);
        }
        b.li(1, 0);            // chain 1 cursor
        b.li(5, kRegion / 2);  // chain 2 cursor
        b.li(20, kIters);
        b.li(21, 0);
        const uint32_t loop = b.label();
        b.ld(1, 1, 0);   // A -> B chain hop
        b.add(2, 1, 1);  // immediate use
        b.ld(5, 5, 0);   // E -> F chain hop (independent of A/B)
        b.add(6, 5, 5);  // immediate use
        b.addi(21, 21, 1);
        b.blt(21, 20, loop);
        b.halt();
        runScenario(
            "Figure 1c/1d: independent chains of dependent misses",
            b.build("chains"),
            "Blocking rallies (SLTP) serialize the two chains; iCFP's "
            "non-blocking rallies overlap B with F.");
    }

    // (e) Data cache miss and independent L2 miss under an L2 miss.
    runScenario(
        "Figure 1e: D$ miss + independent L2 miss under an L2 miss",
        loopProgram(
            "dmiss-under", kRegion,
            [](ProgramBuilder &b) {
                b.li(1, kColdA);
                b.li(5, kColdB);
                b.li(8, 0x20000); // L2-resident region
            },
            [](ProgramBuilder &b, int64_t) {
                b.ld(2, 1, 0);    // A: L2 miss
                b.ld(9, 8, 0);    // C: D$ miss (hits L2)
                b.add(10, 9, 9);  // D: depends on C
                b.ld(6, 5, 0);    // independent L2 miss
                b.add(7, 6, 6);
                b.addi(1, 1, 4160); // 4096 would alias to 2 D$ sets
                b.addi(5, 5, 4160);
                b.addi(8, 8, 128);
                b.andi(8, 8, 0x3ffff);
            }),
        "iCFP confidently poisons the secondary data cache miss because "
        "it can rally back to it the moment it returns; Runahead must "
        "choose between blocking and losing it entirely (Section 2).");

    return 0;
}
