/**
 * @file
 * Multiprocessor safety (Section 3.3): what happens when other threads
 * write memory while iCFP is speculating past a checkpoint.
 *
 * iCFP keeps an address signature of "vulnerable" loads (those that read
 * the cache during an advance epoch). External stores probe it; a hit
 * squashes to the checkpoint, discarding the advance work that might
 * have consumed a stale value. This example injects bursts of external
 * stores at increasing rates and shows the squash count and cost —
 * correctness is implicit, since the model verifies final architectural
 * state against the golden trace on every run.
 *
 *   $ ./build/examples/external_stores
 */

#include <cstdio>

#include "sim/report.hh"
#include "sim/simulator.hh"

using namespace icfp;

int
main()
{
    const Trace trace = makeBenchTrace(findBenchmark("equake"), 60000);

    SimConfig cfg;
    const RunResult quiet = simulate(CoreKind::ICfp, cfg, trace);
    std::printf("quiet run: %lu cycles, IPC %.2f\n\n",
                static_cast<unsigned long>(quiet.cycles), quiet.ipc());

    Table table("External-store traffic vs iCFP (equake analog)");
    table.setColumns({"store period (cyc)", "squashes", "slowdown %"});

    for (const Cycle period : {2000u, 500u, 100u, 20u}) {
        SimConfig c = cfg;
        // External stores sweep a window of the segment the workload
        // also touches, so some probes are genuine conflicts and others
        // are signature false positives — both squash, conservatively.
        Addr addr = 0;
        for (Cycle t = period; t < quiet.cycles * 2; t += period) {
            c.icfp.externalStores.push_back({t, addr});
            addr = (addr + 4096) & 0xffffff;
        }
        const RunResult r = simulate(CoreKind::ICfp, c, trace);
        table.addRow(std::to_string(period),
                     {double(r.squashes),
                      100.0 * (double(r.cycles) / double(quiet.cycles) -
                               1.0)},
                     1);
    }
    table.addNote("");
    table.addNote("Squashes discard advance work but never corrupt "
                  "state: every run re-verifies final registers and "
                  "memory against the golden interpreter.");
    table.print();
    return 0;
}
