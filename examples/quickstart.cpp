/**
 * @file
 * Quickstart: write a tiny program with the builder API, execute it with
 * the golden interpreter, and compare the in-order baseline against iCFP
 * on the resulting trace.
 *
 *   $ ./build/examples/quickstart
 */

#include <cstdio>

#include "sim/simulator.hh"

using namespace icfp;

int
main()
{
    // A loop that chases two independent pointer rings through a 16MB
    // working set — every hop is an all-level cache miss whose value is
    // used immediately (the Figure 1 "A -> b" pattern), interleaved with
    // miss-independent work. In-order stalls at each use; iCFP commits
    // the independent work, defers the uses into the slice buffer, and
    // overlaps the two chains with non-blocking rallies.
    const size_t region = 16 * 1024 * 1024;
    ProgramBuilder b(region);

    // Two pointer rings in opposite halves of the region.
    const unsigned node = 4160; // 4096 would alias to 2 D$ sets
    const size_t nodes = region / 2 / node;
    for (size_t i = 0; i < nodes; ++i) {
        b.poke(Addr{i} * node, (Addr{i} + 257) % nodes * node);
        b.poke(region / 2 + Addr{i} * node,
               region / 2 + (Addr{i} + 401) % nodes * node);
    }

    b.li(1, 0);                              // r1: chain 1 cursor
    b.li(5, static_cast<int64_t>(region / 2)); // r5: chain 2 cursor
    b.li(2, 0);        // r2: accumulator
    b.li(3, 2500);     // r3: iteration bound
    b.li(4, 0);        // r4: counter
    const uint32_t loop = b.label();
    b.ld(1, 1, 0);     // chain 1 hop     (all-level miss)
    b.add(2, 2, 1);    // immediate dependent use
    b.ld(5, 5, 0);     // chain 2 hop     (independent of chain 1)
    b.add(2, 2, 5);    // immediate dependent use
    for (int i = 0; i < 6; ++i)
        b.addi(6, 4, 3); // miss-independent work
    b.addi(4, 4, 1);
    b.blt(4, 3, loop);
    b.halt();

    const Program program = b.build("quickstart");
    const Trace trace = Interpreter::run(program, 20000);
    std::printf("program: %zu static / %zu dynamic instructions\n",
                program.numInstructions(), trace.size());

    SimConfig cfg; // Table 1 machine
    const RunResult base = simulate(CoreKind::InOrder, cfg, trace);
    const RunResult icfp_r = simulate(CoreKind::ICfp, cfg, trace);

    std::printf("in-order: %8lu cycles  (IPC %.3f)\n",
                static_cast<unsigned long>(base.cycles), base.ipc());
    std::printf("iCFP:     %8lu cycles  (IPC %.3f)  -> %.1f%% speedup\n",
                static_cast<unsigned long>(icfp_r.cycles), icfp_r.ipc(),
                percentSpeedup(base, icfp_r));
    std::printf("iCFP advance epochs: %lu, rally passes: %lu, "
                "re-executed slice instructions: %lu\n",
                static_cast<unsigned long>(icfp_r.advanceEntries),
                static_cast<unsigned long>(icfp_r.rallyPasses),
                static_cast<unsigned long>(icfp_r.rallyInsts));
    return 0;
}
