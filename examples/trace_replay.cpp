/**
 * @file
 * Golden traces as files: generate once, archive, replay under many
 * machine configurations (isa/trace_io.hh).
 *
 * This is how the benchmark harnesses amortize workload generation, and
 * how a user can pin an exact dynamic instruction stream for regression
 * comparisons across simulator versions.
 *
 *   $ ./build/examples/trace_replay
 */

#include <cstdio>

#include "isa/trace_io.hh"
#include "sim/report.hh"
#include "sim/simulator.hh"

using namespace icfp;

int
main()
{
    // 1. Generate a golden trace and save it.
    const Trace original = makeBenchTrace(findBenchmark("swim"), 50000);
    const std::string path = "swim_trace.bin";
    saveTraceFile(path, original);
    std::printf("saved %zu dynamic instructions to %s\n\n",
                original.size(), path.c_str());

    // 2. Reload and sweep the L2 hit latency (the Figure 6 experiment)
    //    against the identical instruction stream.
    const Trace replay = loadTraceFile(path);

    Table table("swim analog from " + path +
                ": L2 hit-latency sweep on the reloaded trace");
    table.setColumns({"L2 hit (cyc)", "in-order IPC", "iCFP IPC",
                      "iCFP speedup %"});
    for (const Cycle l2 : {10u, 20u, 30u, 40u, 50u}) {
        SimConfig cfg;
        cfg.mem.l2HitLatency = l2;
        const RunResult base = simulate(CoreKind::InOrder, cfg, replay);
        const RunResult ic = simulate(CoreKind::ICfp, cfg, replay);
        table.addRow(std::to_string(l2),
                     {base.ipc(), ic.ipc(), percentSpeedup(base, ic)},
                     2);
    }
    table.print();

    // 3. Determinism check: the reloaded trace times identically.
    SimConfig cfg;
    const Cycle a = simulate(CoreKind::ICfp, cfg, original).cycles;
    const Cycle b = simulate(CoreKind::ICfp, cfg, replay).cycles;
    std::printf("\ndeterminism: original %lu cycles, reloaded %lu "
                "cycles (%s)\n",
                static_cast<unsigned long>(a),
                static_cast<unsigned long>(b),
                a == b ? "identical" : "MISMATCH");
    std::remove(path.c_str());
    return a == b ? 0 : 1;
}
