/**
 * @file
 * Pointer-chase scenario (the mcf workload of the paper's introduction):
 * dependent all-level misses, where only non-blocking rallies can overlap
 * the chains. Compares all five core models and prints iCFP diagnostics.
 *
 *   $ ./build/examples/pointer_chase
 */

#include <cstdio>

#include "sim/report.hh"
#include "sim/simulator.hh"

using namespace icfp;

int
main()
{
    const Trace trace = makeBenchTrace(findBenchmark("mcf"), 100000);

    SimConfig cfg;
    Table table("mcf analog: dependent miss chains "
                "(100000 instructions)");
    table.setColumns({"core", "cycles", "IPC", "speedup %", "D$ MLP",
                      "L2 MLP"});

    const RunResult base = simulate(CoreKind::InOrder, cfg, trace);
    const CoreKind kinds[] = {CoreKind::InOrder, CoreKind::Runahead,
                              CoreKind::Multipass, CoreKind::Sltp,
                              CoreKind::ICfp};
    for (const CoreKind kind : kinds) {
        const RunResult r = simulate(kind, cfg, trace);
        table.addRow(coreKindName(kind),
                     {double(r.cycles), r.ipc(), percentSpeedup(base, r),
                      r.dcacheMlp, r.l2Mlp},
                     2);
    }
    table.addNote("");
    table.addNote("Dependent chains defeat Runahead-style re-execution; "
                  "SLTP's blocking rallies serialize the chains; iCFP's "
                  "non-blocking multi-pass rallies overlap them "
                  "(Figure 1c/1d).");
    table.print();

    const RunResult ic = simulate(CoreKind::ICfp, cfg, trace);
    std::printf("\niCFP rally behaviour: %lu passes, %.0f rally "
                "instructions per 1000 committed (paper Table 2: mcf "
                "rallies 2876/KI)\n",
                static_cast<unsigned long>(ic.rallyPasses),
                ic.rallyPerKi());
    return 0;
}
