/**
 * @file
 * Writing your own µISA program with ProgramBuilder and running it on
 * every core model.
 *
 * The program is a classic linked-list sum: nodes are spread across a
 * 16MB segment (every hop misses all cache levels), and each node's
 * payload feeds an accumulator — the "lone L2 miss with one dependent
 * instruction" pattern of Figure 1a, repeated.
 *
 *   $ ./build/examples/custom_program
 */

#include <cstdio>

#include "isa/interpreter.hh"
#include "isa/program.hh"
#include "sim/report.hh"
#include "sim/simulator.hh"

using namespace icfp;

namespace {

/**
 * Build a linked list of @p nodes spread through the data segment and a
 * loop that walks it, summing payloads. Node layout: [next, payload].
 */
Program
buildListSum(size_t segment_bytes, unsigned nodes)
{
    ProgramBuilder b(segment_bytes);

    // Lay the nodes out with a large prime-ish stride so consecutive
    // nodes never share a cache line or prefetch stream.
    const Addr stride = 40960 + 64;
    Addr addr = 0;
    for (unsigned i = 0; i < nodes; ++i) {
        const Addr next = (i + 1 < nodes) ? addr + stride : 0;
        b.poke(addr, next);          // node.next
        b.poke(addr + 8, 3 * i + 1); // node.payload
        addr += stride;
    }

    b.li(1, 0);  // r1 = cursor (head at 0... restart target)
    b.li(2, 0);  // r2 = sum
    const uint32_t loop = b.label();
    b.ld(3, 1, 8);    // r3 = node.payload   (dependent use, Figure 1a "B")
    b.add(2, 2, 3);   // sum += payload
    b.ld(1, 1, 0);    // r1 = node.next      (the chase)
    b.bne(1, 0, loop);
    b.li(1, 0);       // wrap to the head and walk again
    b.jmp(loop);
    return b.build("list-sum");
}

} // namespace

int
main()
{
    const Program program = buildListSum(16 * 1024 * 1024, 256);
    const Trace trace = Interpreter::run(program, 60000);

    std::printf("list-sum: %zu static instructions, %zu dynamic\n",
                program.numInstructions(), trace.size());

    SimConfig cfg;
    Table table("Linked-list sum on every core model");
    table.setColumns({"core", "cycles", "IPC", "speedup %", "L2 MLP"});

    const RunResult base = simulate(CoreKind::InOrder, cfg, trace);
    for (const CoreKind kind :
         {CoreKind::InOrder, CoreKind::Runahead, CoreKind::Multipass,
          CoreKind::Sltp, CoreKind::ICfp, CoreKind::Ooo, CoreKind::Cfp}) {
        const RunResult r = simulate(kind, cfg, trace);
        table.addRow(coreKindName(kind),
                     {double(r.cycles), r.ipc(), percentSpeedup(base, r),
                      r.l2Mlp},
                     2);
    }
    table.addNote("");
    table.addNote("A single serial chain: no scheme can overlap the "
                  "misses (L2 MLP ~ 1), but advance schemes still commit "
                  "the miss-independent work under each miss.");
    table.print();
    return 0;
}
