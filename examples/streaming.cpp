/**
 * @file
 * Streaming scenario (the swim/applu workloads): independent misses with
 * a hardware stream prefetcher. Shows (a) how much the prefetcher covers
 * by itself, and (b) what iCFP adds on top by tolerating the remaining
 * data-cache misses.
 *
 *   $ ./build/examples/streaming
 */

#include <cstdio>

#include "sim/report.hh"
#include "sim/simulator.hh"

using namespace icfp;

int
main()
{
    const Trace trace = makeBenchTrace(findBenchmark("swim"), 100000);

    Table table("swim analog: streaming with stream-buffer prefetching");
    table.setColumns({"configuration", "cycles", "IPC", "L2 miss/KI",
                      "pf hits"});

    auto run = [&](const char *label, CoreKind kind, bool prefetch) {
        SimConfig cfg;
        cfg.mem.prefetcher.enabled = prefetch;
        const RunResult r = simulate(kind, cfg, trace);
        table.addRow(label,
                     {double(r.cycles), r.ipc(),
                      r.missPerKi(r.mem.l2Misses),
                      double(r.mem.prefetchHits)},
                     2);
        return r;
    };

    run("in-order, no prefetch", CoreKind::InOrder, false);
    run("in-order + prefetch", CoreKind::InOrder, true);
    run("iCFP, no prefetch", CoreKind::ICfp, false);
    run("iCFP + prefetch", CoreKind::ICfp, true);

    table.addNote("");
    table.addNote("The paper's baseline includes stream-buffer "
                  "prefetching (Table 1): prefetching removes most L2 "
                  "misses on streams, and iCFP then hides the remaining "
                  "data-cache misses the prefetcher cannot.");
    table.print();
    return 0;
}
